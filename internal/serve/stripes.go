package serve

import (
	"sync"
	"sync/atomic"
	"time"

	"eabrowse/internal/features"
	"eabrowse/internal/obs"
)

// The request path counts and times itself into GOMAXPROCS-striped atomic
// state instead of a mutex-guarded obs recorder: concurrent requests touch
// different stripes (each pooled scratch carries a stripe reference, and
// sync.Pool keeps scratches per-P), so the hot path never contends on a
// shared line, and /metrics folds the stripes into the same obs.Metrics
// document the recorder used to produce.

// Counter indices into a stripe. The names are the wire/metrics names the
// obs recorder used, so dashboards and the soak harness keep working.
const (
	cPredict = iota
	cDecide
	cSimulate
	cSwitch
	cBatch
	cBatchItems
	nCounters
)

// Histogram indices into a stripe.
const (
	hPredict = iota
	hDecide
	hSimulate
	hBatch
	nHists
)

var counterNames = [nCounters]string{
	cPredict:    counterPredict,
	cDecide:     counterDecide,
	cSimulate:   counterSimulate,
	cSwitch:     counterSwitch,
	cBatch:      counterBatch,
	cBatchItems: counterBatchItems,
}

var histNames = [nHists]string{
	hPredict:  latencyPredict,
	hDecide:   latencyDecide,
	hSimulate: latencySimulate,
	hBatch:    latencyBatch,
}

// stripe is one shard of the service's counters and latency histograms.
// The trailing pad keeps adjacent stripes off one cache line.
type stripe struct {
	counters [nCounters]atomic.Int64
	hists    [nHists]obs.AtomicHist
	_        [64]byte
}

func (st *stripe) count(i int) {
	st.counters[i].Add(1)
}

func (st *stripe) add(i int, n int64) {
	st.counters[i].Add(n)
}

func (st *stripe) observe(i int, start time.Time) {
	st.hists[i].Observe(time.Since(start))
}

// scratch is the per-request reusable state of the zero-alloc fast lane:
// input/output buffers, parsed-feature storage, and the metrics stripe this
// scratch feeds. Scratches live in a sync.Pool, which shards per P — so the
// stripe a goroutine counts into is usually one its CPU already owns.
type scratch struct {
	st      *stripe
	in      []byte            // raw request body
	out     []byte            // encoded response
	feats   []float64         // predict/decide feature values
	vecs    []features.Vector // batch rows (capped at maxBatchRows)
	rowLens []int             // batch row arities, including rows beyond the cap
	preds   []float64         // batch predictions
	xs      [][]float64       // batch row-pointer scratch for the predictor
}

// newScratchPool builds the pool; stripes are dealt round-robin at scratch
// creation, which spreads them evenly across however many scratches
// concurrency ends up demanding.
func (s *Server) newScratchPool() sync.Pool {
	return sync.Pool{New: func() any {
		st := &s.stripes[int(s.stripeRotor.Add(1)-1)%len(s.stripes)]
		return &scratch{
			st:    st,
			in:    make([]byte, 0, 4096),
			out:   make([]byte, 0, 1024),
			feats: make([]float64, 0, features.Num),
		}
	}}
}

func (s *Server) getScratch() *scratch {
	return s.scratch.Get().(*scratch)
}

func (s *Server) putScratch(sc *scratch) {
	s.scratch.Put(sc)
}

// obsSnapshot folds the stripes into the obs.Metrics shape the /metrics
// document has always carried (aggregate counters/histograms plus the
// "easerd" per-session view).
func (s *Server) obsSnapshot() obs.Metrics {
	m := obs.Metrics{
		Sessions:   1,
		Counters:   make(map[string]int64),
		Histograms: make(map[string]obs.HistogramSnapshot),
	}
	for i, name := range counterNames {
		var total int64
		for j := range s.stripes {
			total += s.stripes[j].counters[i].Load()
		}
		if total != 0 {
			m.Counters[name] = total
		}
	}
	for i, name := range histNames {
		var snap obs.HistogramSnapshot
		for j := range s.stripes {
			snap.Merge(s.stripes[j].hists[i].Snapshot())
		}
		if snap.Count != 0 {
			m.Histograms[name] = snap
		}
	}
	sess := obs.SessionMetrics{}
	if len(m.Counters) > 0 {
		sess.Counters = make(map[string]int64, len(m.Counters))
		for k, v := range m.Counters {
			sess.Counters[k] = v
		}
	}
	if len(m.Histograms) > 0 {
		sess.Histograms = make(map[string]obs.HistogramSnapshot, len(m.Histograms))
		for k, v := range m.Histograms {
			sess.Histograms[k] = v
		}
	}
	m.PerSession = map[string]obs.SessionMetrics{"easerd": sess}
	return m
}
