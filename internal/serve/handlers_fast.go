package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"eabrowse/internal/features"
	"eabrowse/internal/policy"
)

// The fast lane: /v1/predict, /v1/decide and /v1/predict_batch run inline
// on the connection goroutine — the compute is a sub-microsecond forest
// walk, so a queue hop would cost more than the work — through pooled
// scratch buffers and the hand-rolled JSON layer. The steady-state path
// allocates nothing (BenchmarkServePredict pins 0 allocs/op end to end).
// /v1/simulate keeps the bounded worker queue: simulations run for
// milliseconds, which is what backpressure and deadlines are for.

// jsonCTValue is the shared Content-Type value; assigning the slice
// directly avoids Header().Set's per-call []string allocation.
var jsonCTValue = []string{"application/json"}

// decideModeNames are the wire names the fast parser resolves "mode"
// against; anything else falls back (and 400s like it always has).
var decideModeNames = []string{"delay", "delay-driven", "power", "power-driven"}

// maxBatchRows caps one predict_batch request.
const maxBatchRows = 8192

// fastGate is the fast lane's admission check: bounded work is guaranteed
// by construction here — the body is size-capped, the compute is a fixed
// forest walk — so admission is just "are we accepting", one atomic load,
// plus in-flight accounting for /metrics.
func (s *Server) fastGate(w http.ResponseWriter) bool {
	if !s.accepting.Load() {
		s.rejects.Add(1)
		s.writeWorkError(w, errShuttingDown)
		return false
	}
	return true
}

// readBody reads the whole request body into sc.in, enforcing the method
// and size contracts with the same statuses and messages as the legacy
// decoder (405, 413).
func (s *Server) readBody(w http.ResponseWriter, r *http.Request, sc *scratch) ([]byte, bool) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return nil, false
	}
	buf := sc.in[:0]
	maxBytes := s.cfg.MaxBodyBytes
	for {
		if int64(len(buf)) > maxBytes {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("body exceeds %d bytes", maxBytes))
			return nil, false
		}
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		n, err := r.Body.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err == io.EOF {
			break
		}
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
			return nil, false
		}
	}
	sc.in = buf
	if int64(len(buf)) > maxBytes {
		writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("body exceeds %d bytes", maxBytes))
		return nil, false
	}
	return buf, true
}

// decodeBodyBytes is the fallback decoder: encoding/json over the buffered
// body with exactly the legacy decodeBody semantics (unknown fields and
// trailing data are 400s with the same messages; the size cap was already
// enforced by readBody).
func decodeBodyBytes(w http.ResponseWriter, body []byte, v any) bool {
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return false
	}
	if dec.More() {
		writeError(w, http.StatusBadRequest, "trailing data after JSON body")
		return false
	}
	return true
}

// writeFast sends a prebuilt JSON body on the 200 path without allocating:
// the Content-Type header value is shared, and bodies that fit net/http's
// 2 KiB write buffer get their Content-Length computed by net/http for
// free. Only oversized (large-batch) responses pay for an explicit header,
// which keeps them framed with Content-Length instead of chunked encoding.
func writeFast(w http.ResponseWriter, body []byte) {
	h := w.Header()
	h["Content-Type"] = jsonCTValue
	if len(body) > 2048 {
		h.Set("Content-Length", strconv.Itoa(len(body)))
	}
	_, _ = w.Write(body)
}

// --- /v1/predict ------------------------------------------------------------

func (s *Server) handlePredictFast(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	if !s.fastGate(w) {
		return
	}
	s.inFlight.Add(1)
	defer s.inFlight.Add(-1)
	sc := s.getScratch()
	defer s.putScratch(sc)
	body, ok := s.readBody(w, r, sc)
	if !ok {
		return
	}
	feats, radio, err := parseFastPredict(body, sc.feats, s.radioNames)
	sc.feats = feats[:0]
	if err != nil {
		s.legacyPredict(w, body, start, sc.st)
		return
	}
	if radio == "" {
		radio = "umts"
	}
	var vec features.Vector
	if !parseFeatures(w, feats, &vec) {
		return
	}
	res, cerr := s.predictCoreStripe(&vec, sc.st)
	if cerr != nil {
		s.writeWorkError(w, cerr)
		return
	}
	sc.st.observe(hPredict, start)
	out, eok := appendPredictResponse(sc.out[:0], res.seconds, res.gen, radio)
	sc.out = out[:0]
	if !eok {
		writeJSON(w, http.StatusOK, predictResponse{
			ReadingSeconds: res.seconds, ModelGeneration: res.gen, Radio: radio,
		})
		return
	}
	writeFast(w, out)
}

// legacyPredict replays the pre-fast-path handler over the buffered body,
// reproducing its statuses, messages and bytes exactly.
func (s *Server) legacyPredict(w http.ResponseWriter, body []byte, start time.Time, st *stripe) {
	var req predictRequest
	if !decodeBodyBytes(w, body, &req) {
		return
	}
	var vec features.Vector
	if !parseFeatures(w, req.Features, &vec) {
		return
	}
	radio, ok := parseRadio(w, req.Radio)
	if !ok {
		return
	}
	res, err := s.predictCoreStripe(&vec, st)
	if err != nil {
		s.writeWorkError(w, err)
		return
	}
	st.observe(hPredict, start)
	writeJSON(w, http.StatusOK, predictResponse{
		ReadingSeconds:  res.seconds,
		ModelGeneration: res.gen,
		Radio:           radio,
	})
}

// --- /v1/decide -------------------------------------------------------------

func (s *Server) handleDecideFast(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	if !s.fastGate(w) {
		return
	}
	s.inFlight.Add(1)
	defer s.inFlight.Add(-1)
	sc := s.getScratch()
	defer s.putScratch(sc)
	body, ok := s.readBody(w, r, sc)
	if !ok {
		return
	}
	feats, modeName, err := parseFastDecide(body, sc.feats, decideModeNames)
	sc.feats = feats[:0]
	if err != nil {
		s.legacyDecide(w, body, start, sc.st)
		return
	}
	mode := policy.ModeDelay
	if modeName == "power" || modeName == "power-driven" {
		mode = policy.ModePower
	}
	var vec features.Vector
	if !parseFeatures(w, feats, &vec) {
		return
	}
	res, cerr := s.decideCoreStripe(&vec, mode, sc.st)
	if cerr != nil {
		s.writeWorkError(w, cerr)
		return
	}
	sc.st.observe(hDecide, start)
	resp := decideResponse{
		ReadingSeconds:  res.seconds,
		Switch:          res.d.Switch,
		Reason:          res.d.Reason,
		Mode:            mode.String(),
		TpSeconds:       res.tp.Seconds(),
		TdSeconds:       res.td.Seconds(),
		ModelGeneration: res.gen,
	}
	out, eok := appendDecideResponse(sc.out[:0], &resp)
	sc.out = out[:0]
	if !eok {
		writeJSON(w, http.StatusOK, resp)
		return
	}
	writeFast(w, out)
}

func (s *Server) legacyDecide(w http.ResponseWriter, body []byte, start time.Time, st *stripe) {
	var req decideRequest
	if !decodeBodyBytes(w, body, &req) {
		return
	}
	var vec features.Vector
	if !parseFeatures(w, req.Features, &vec) {
		return
	}
	mode, ok := parsePolicyMode(w, req.Mode)
	if !ok {
		return
	}
	res, err := s.decideCoreStripe(&vec, mode, st)
	if err != nil {
		s.writeWorkError(w, err)
		return
	}
	st.observe(hDecide, start)
	writeJSON(w, http.StatusOK, decideResponse{
		ReadingSeconds:  res.seconds,
		Switch:          res.d.Switch,
		Reason:          res.d.Reason,
		Mode:            mode.String(),
		TpSeconds:       res.tp.Seconds(),
		TdSeconds:       res.td.Seconds(),
		ModelGeneration: res.gen,
	})
}

// --- /v1/predict_batch ------------------------------------------------------

type batchRequest struct {
	// Features holds one Table 1 vector per row.
	Features [][]float64 `json:"features"`
}

type batchResponse struct {
	ReadingSeconds  []float64 `json:"reading_seconds"`
	ModelGeneration uint64    `json:"model_generation"`
}

// batchRowError formats per-row validation failures identically for the
// fast and fallback paths.
func batchRowError(w http.ResponseWriter, i, arity int) {
	writeError(w, http.StatusBadRequest,
		fmt.Sprintf("vector %d: need exactly %d features (Table 1 order), got %d", i, features.Num, arity))
}

// checkBatchShape validates the row count and arities shared by both paths.
func checkBatchShape(w http.ResponseWriter, rows int, arity func(int) int) bool {
	if rows == 0 {
		writeError(w, http.StatusBadRequest, "empty batch: need at least one feature vector")
		return false
	}
	if rows > maxBatchRows {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("batch of %d vectors exceeds %d", rows, maxBatchRows))
		return false
	}
	for i := 0; i < rows; i++ {
		if n := arity(i); n != features.Num {
			batchRowError(w, i, n)
			return false
		}
	}
	return true
}

func (s *Server) handlePredictBatch(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	if !s.fastGate(w) {
		return
	}
	s.inFlight.Add(1)
	defer s.inFlight.Add(-1)
	sc := s.getScratch()
	defer s.putScratch(sc)
	body, ok := s.readBody(w, r, sc)
	if !ok {
		return
	}
	rows, err := parseFastBatch(body, sc)
	if err != nil {
		s.legacyPredictBatch(w, body, start, sc)
		return
	}
	if !checkBatchShape(w, rows, func(i int) int { return sc.rowLens[i] }) {
		return
	}
	s.finishBatch(w, start, sc, rows)
}

func (s *Server) legacyPredictBatch(w http.ResponseWriter, body []byte, start time.Time, sc *scratch) {
	var req batchRequest
	if !decodeBodyBytes(w, body, &req) {
		return
	}
	rows := len(req.Features)
	if !checkBatchShape(w, rows, func(i int) int { return len(req.Features[i]) }) {
		return
	}
	for len(sc.vecs) < rows {
		sc.vecs = append(sc.vecs, features.Vector{})
	}
	for i, row := range req.Features {
		copy(sc.vecs[i][:], row)
	}
	s.finishBatch(w, start, sc, rows)
}

// finishBatch runs the validated rows through the zero-alloc batch
// predictor and renders the response. Rows may carry non-finite values
// only via the fallback path (JSON cannot express them on the fast path),
// and the forest tolerates any finite input, so no per-value check runs
// here — parseFeatures' finiteness rule is about single-vector parity.
func (s *Server) finishBatch(w http.ResponseWriter, start time.Time, sc *scratch, rows int) {
	lm := s.model.current()
	if lm == nil {
		s.writeWorkError(w, errNoModel)
		return
	}
	for cap(sc.preds) < rows {
		sc.preds = append(sc.preds[:cap(sc.preds)], 0)
	}
	sc.preds = sc.preds[:rows]
	var err error
	sc.xs, err = lm.pred.PredictBatchVecSeconds(sc.vecs[:rows], sc.preds, sc.xs)
	if err != nil {
		s.writeWorkError(w, err)
		return
	}
	sc.st.count(cBatch)
	sc.st.add(cBatchItems, int64(rows))
	sc.st.observe(hBatch, start)
	out, eok := appendBatchResponse(sc.out[:0], sc.preds, lm.gen)
	sc.out = out[:0]
	if !eok {
		writeJSON(w, http.StatusOK, batchResponse{ReadingSeconds: sc.preds, ModelGeneration: lm.gen})
		return
	}
	writeFast(w, out)
}
