package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"eabrowse/internal/features"
	"eabrowse/internal/predictor"
	"eabrowse/internal/retry"
)

// goldenModelPath is the committed fixture trained by the predictor package's
// golden test; it doubles as this package's model file.
const goldenModelPath = "../predictor/testdata/golden_predictor.json"

// probeVec is an arbitrary plausible Table 1 feature vector.
var probeVec = features.Vector{12, 340, 25, 4, 9, 120, 0.8, 3, 2800, 320}

// fastRetry keeps test startups snappy.
func fastRetry() retry.Policy {
	p := retry.DefaultPolicy()
	p.InitialDelay = time.Millisecond
	p.MaxDelay = 5 * time.Millisecond
	return p
}

// startServer brings up a service on a free port and tears it down with the
// test.
func startServer(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	if cfg.Retry.MaxAttempts == 0 {
		cfg.Retry = fastRetry()
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := s.Start(context.Background()); err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return s, "http://" + s.Addr()
}

// postJSON posts a JSON-encoded body and decodes a JSON response into out
// (when non-nil), returning the status code.
func postJSON(t *testing.T, url string, body any, out any) int {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("POST %s: bad response body %q: %v", url, data, err)
		}
	}
	return resp.StatusCode
}

func getStatus(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(data)
}

func TestServeLifecycle(t *testing.T) {
	s, base := startServer(t, Config{ModelPath: goldenModelPath, QueueDepth: 64})

	if !s.Ready() {
		t.Fatal("server not ready after Start with a model")
	}
	if code, body := getStatus(t, base+"/healthz"); code != http.StatusOK || body != "ok\n" {
		t.Fatalf("healthz: %d %q", code, body)
	}
	if code, body := getStatus(t, base+"/readyz"); code != http.StatusOK || body != "ready\n" {
		t.Fatalf("readyz: %d %q", code, body)
	}

	// Predictions must be bit-identical to using the predictor directly.
	direct, err := predictor.LoadFile(goldenModelPath)
	if err != nil {
		t.Fatalf("LoadFile: %v", err)
	}
	want, err := direct.PredictVecSeconds(&probeVec)
	if err != nil {
		t.Fatal(err)
	}
	var pr predictResponse
	if code := postJSON(t, base+"/v1/predict", predictRequest{Features: probeVec[:]}, &pr); code != http.StatusOK {
		t.Fatalf("predict: status %d", code)
	}
	if pr.ReadingSeconds != want {
		t.Fatalf("served prediction %v != direct %v", pr.ReadingSeconds, want)
	}
	if pr.ModelGeneration != 1 {
		t.Fatalf("model generation %d, want 1", pr.ModelGeneration)
	}

	// Decide must agree with the thresholds that travel in the model file.
	for _, mode := range []string{"", "delay", "power"} {
		var dr decideResponse
		if code := postJSON(t, base+"/v1/decide", decideRequest{Features: probeVec[:], Mode: mode}, &dr); code != http.StatusOK {
			t.Fatalf("decide(%q): status %d", mode, code)
		}
		if dr.ReadingSeconds != want {
			t.Fatalf("decide(%q) predicted %v, want %v", mode, dr.ReadingSeconds, want)
		}
		if dr.TpSeconds != 9 || dr.TdSeconds != 20 {
			t.Fatalf("decide(%q) thresholds tp=%v td=%v, want 9/20", mode, dr.TpSeconds, dr.TdSeconds)
		}
		pred := time.Duration(dr.ReadingSeconds * float64(time.Second))
		wantSwitch := pred > 20*time.Second || (mode == "power" && pred > 9*time.Second)
		if dr.Switch != wantSwitch {
			t.Fatalf("decide(%q): switch=%v reason=%q for predicted %v", mode, dr.Switch, dr.Reason, pred)
		}
		switch dr.Reason {
		case "beyond-Td", "beyond-Tp", "keep":
		default:
			t.Fatalf("decide(%q): unknown reason %q", mode, dr.Reason)
		}
	}

	// Simulate runs a full pooled page load; energy with reading strictly
	// exceeds load energy (the tail burns power) in both browser modes.
	for _, mode := range []string{"original", "energy-aware"} {
		var sr simulateResponse
		req := simulateRequest{Page: "m.cnn.com", Mode: mode, ReadingS: 30}
		if code := postJSON(t, base+"/v1/simulate", req, &sr); code != http.StatusOK {
			t.Fatalf("simulate(%s): status %d", mode, code)
		}
		if sr.Page != "m.cnn.com" || sr.Mode != mode {
			t.Fatalf("simulate(%s): echoed %q/%q", mode, sr.Page, sr.Mode)
		}
		if sr.LoadSeconds <= 0 || sr.TransmissionS <= 0 || sr.LoadEnergyJ <= 0 {
			t.Fatalf("simulate(%s): non-positive figures %+v", mode, sr)
		}
		if sr.EnergyWithReading <= sr.LoadEnergyJ {
			t.Fatalf("simulate(%s): reading window added no energy: %+v", mode, sr)
		}
		if sr.ReadingEnergyJ <= 0 {
			t.Fatalf("simulate(%s): reading energy %v", mode, sr.ReadingEnergyJ)
		}
	}
	// Pooled sessions must give bit-identical answers on reuse.
	var first, second simulateResponse
	req := simulateRequest{Page: "m.ebay.com", Mode: "energy-aware", ReadingS: 12}
	postJSON(t, base+"/v1/simulate", req, &first)
	postJSON(t, base+"/v1/simulate", req, &second)
	if first != second {
		t.Fatalf("pooled simulate not deterministic:\n%+v\n%+v", first, second)
	}

	var m Metrics
	if code := postJSON(t, base+"/metrics", nil, nil); code != http.StatusMethodNotAllowed && code != http.StatusOK {
		t.Fatalf("metrics POST: %d", code)
	}
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("metrics decode: %v", err)
	}
	resp.Body.Close()
	if m.Requests == 0 || m.QueueCapacity != 64 {
		t.Fatalf("metrics: %+v", m)
	}
	if !m.Model.Ready || m.Model.Generation != 1 || m.Model.Reloads != 0 || m.Model.Trees == 0 {
		t.Fatalf("metrics model: %+v", m.Model)
	}
	if m.Obs.Counters[counterPredict] < 1 || m.Obs.Counters[counterDecide] < 3 || m.Obs.Counters[counterSimulate] < 4 {
		t.Fatalf("obs counters: %+v", m.Obs.Counters)
	}
	if m.Obs.Histograms[latencyPredict].Count < 1 {
		t.Fatalf("obs histograms: %+v", m.Obs.Histograms)
	}

	var buf bytes.Buffer
	if err := s.WriteMetrics(&buf); err != nil {
		t.Fatalf("WriteMetrics: %v", err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("WriteMetrics wrote invalid JSON")
	}
}

func TestBadRequests(t *testing.T) {
	_, base := startServer(t, Config{ModelPath: goldenModelPath, MaxBodyBytes: 2048})

	short := probeVec[:3]
	cases := []struct {
		name   string
		url    string
		method string
		body   string
		want   int
	}{
		{"predict GET", "/v1/predict", http.MethodGet, "", http.StatusMethodNotAllowed},
		{"predict not json", "/v1/predict", http.MethodPost, "not json", http.StatusBadRequest},
		{"predict short vector", "/v1/predict", http.MethodPost,
			fmt.Sprintf(`{"features":[%v,%v,%v]}`, short[0], short[1], short[2]), http.StatusBadRequest},
		{"predict unknown field", "/v1/predict", http.MethodPost, `{"featurez":[1]}`, http.StatusBadRequest},
		{"predict trailing data", "/v1/predict", http.MethodPost, `{"features":[]} extra`, http.StatusBadRequest},
		{"predict huge body", "/v1/predict", http.MethodPost,
			`{"features":[` + strings.Repeat("1,", 4096) + `1]}`, http.StatusRequestEntityTooLarge},
		{"decide bad mode", "/v1/decide", http.MethodPost,
			`{"features":[1,2,3,4,5,6,7,8,9,10],"mode":"turbo"}`, http.StatusBadRequest},
		{"simulate bad page", "/v1/simulate", http.MethodPost, `{"page":"m.nosuch.example"}`, http.StatusBadRequest},
		{"simulate bad mode", "/v1/simulate", http.MethodPost, `{"page":"m.cnn.com","mode":"warp"}`, http.StatusBadRequest},
		{"simulate negative reading", "/v1/simulate", http.MethodPost,
			`{"page":"m.cnn.com","reading_s":-1}`, http.StatusBadRequest},
		{"simulate absurd reading", "/v1/simulate", http.MethodPost,
			`{"page":"m.cnn.com","reading_s":1e9}`, http.StatusBadRequest},
		{"reload GET", "/admin/reload", http.MethodGet, "", http.StatusMethodNotAllowed},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest(tc.method, base+tc.url, strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.want {
				body, _ := io.ReadAll(resp.Body)
				t.Fatalf("status %d, want %d (body %s)", resp.StatusCode, tc.want, body)
			}
			var er errorResponse
			if err := json.NewDecoder(resp.Body).Decode(&er); err != nil || er.Error == "" {
				t.Fatalf("error body missing: %v", err)
			}
		})
	}
}

func TestNotReadyWithoutModel(t *testing.T) {
	s, base := startServer(t, Config{})
	if s.Ready() {
		t.Fatal("ready with no model")
	}
	code, body := getStatus(t, base+"/readyz")
	if code != http.StatusServiceUnavailable || !strings.Contains(body, "no model") {
		t.Fatalf("readyz: %d %q", code, body)
	}
	// The process is alive even if it cannot serve predictions yet.
	if code, _ := getStatus(t, base+"/healthz"); code != http.StatusOK {
		t.Fatalf("healthz: %d", code)
	}
	if code := postJSON(t, base+"/v1/predict", predictRequest{Features: probeVec[:]}, nil); code != http.StatusServiceUnavailable {
		t.Fatalf("predict without model: %d, want 503", code)
	}
	var rr reloadResponse
	if code := postJSON(t, base+"/admin/reload", nil, &rr); code != http.StatusInternalServerError {
		t.Fatalf("reload without path: %d", code)
	}
	if rr.Generation != 0 || rr.Error == "" {
		t.Fatalf("reload without path: %+v", rr)
	}
}

// TestReloadSwapAndRollback is the tentpole's core contract: a good file
// swaps in atomically, a bad file is rejected with the old model untouched.
func TestReloadSwapAndRollback(t *testing.T) {
	golden, err := os.ReadFile(goldenModelPath)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "model.json")
	if err := os.WriteFile(path, golden, 0o644); err != nil {
		t.Fatal(err)
	}
	s, base := startServer(t, Config{ModelPath: path})

	var before predictResponse
	postJSON(t, base+"/v1/predict", predictRequest{Features: probeVec[:]}, &before)
	if before.ModelGeneration != 1 {
		t.Fatalf("generation %d, want 1", before.ModelGeneration)
	}

	// Corrupt the file: the reload must fail and the old model keep serving.
	if err := os.WriteFile(path, []byte("{definitely not a model"), 0o644); err != nil {
		t.Fatal(err)
	}
	var rr reloadResponse
	if code := postJSON(t, base+"/admin/reload", nil, &rr); code != http.StatusInternalServerError {
		t.Fatalf("reload of corrupt file: status %d", code)
	}
	if rr.Generation != 1 || rr.Error == "" {
		t.Fatalf("reload of corrupt file: %+v", rr)
	}
	var after predictResponse
	if code := postJSON(t, base+"/v1/predict", predictRequest{Features: probeVec[:]}, &after); code != http.StatusOK {
		t.Fatalf("predict after failed reload: %d", code)
	}
	if after != before {
		t.Fatalf("failed reload changed answers: %+v vs %+v", after, before)
	}
	if got := s.model.failures.Load(); got != 1 {
		t.Fatalf("reload failures %d, want 1", got)
	}

	// Restore a good file: the swap succeeds and the generation advances.
	if err := os.WriteFile(path, golden, 0o644); err != nil {
		t.Fatal(err)
	}
	if code := postJSON(t, base+"/admin/reload", nil, &rr); code != http.StatusOK {
		t.Fatalf("reload of restored file: status %d (%+v)", code, rr)
	}
	if rr.Generation != 2 || rr.Trees == 0 {
		t.Fatalf("reload of restored file: %+v", rr)
	}
	var again predictResponse
	postJSON(t, base+"/v1/predict", predictRequest{Features: probeVec[:]}, &again)
	if again.ModelGeneration != 2 || again.ReadingSeconds != before.ReadingSeconds {
		t.Fatalf("after swap: %+v", again)
	}

	var m Metrics
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if m.Model.Reloads != 1 || m.Model.ReloadFailures != 1 {
		t.Fatalf("metrics after reloads: %+v", m.Model)
	}
}

// waitFor polls until cond holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestBackpressure wedges the single worker, fills the one-slot queue, and
// requires the next simulate request to bounce with 429 + Retry-After
// instead of queueing unboundedly. (Prediction endpoints run inline, off the
// queue; the backpressure contract belongs to /v1/simulate now.)
func TestBackpressure(t *testing.T) {
	s, base := startServer(t, Config{ModelPath: goldenModelPath, Workers: 1, QueueDepth: 1})

	block := make(chan struct{})
	release := func() {
		select {
		case <-block:
		default:
			close(block)
		}
	}
	defer release()
	// Occupy the worker...
	go func() { _ = s.submit(context.Background(), func() { <-block }) }()
	waitFor(t, "worker busy", func() bool { return s.inFlight.Load() == 1 })
	// ...and fill the queue behind it.
	go func() { _ = s.submit(context.Background(), func() {}) }()
	waitFor(t, "queue full", func() bool { return len(s.queue) == 1 })

	raw, _ := json.Marshal(simulateRequest{Page: "m.cnn.com", ReadingS: 1})
	resp, err := http.Post(base+"/v1/simulate", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated simulate: status %d (%s)", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if s.rejects.Load() == 0 {
		t.Fatal("reject not counted")
	}

	// The inline prediction lane does not queue, so a wedged worker pool
	// cannot starve it: predict answers 200 while simulate bounces.
	if code := postJSON(t, base+"/v1/predict", predictRequest{Features: probeVec[:]}, nil); code != http.StatusOK {
		t.Fatalf("predict while simulate saturated: %d", code)
	}

	// Unwedge: service recovers by itself.
	release()
	waitFor(t, "drain", func() bool { return s.inFlight.Load() == 0 && len(s.queue) == 0 })
	if code := postJSON(t, base+"/v1/simulate", simulateRequest{Page: "m.cnn.com", ReadingS: 1}, nil); code != http.StatusOK {
		t.Fatalf("simulate after drain: %d", code)
	}
}

// TestRequestDeadline wedges the worker and checks a short-deadline simulate
// request queued behind it answers 504 without waiting for the wedge to
// clear.
func TestRequestDeadline(t *testing.T) {
	s, base := startServer(t, Config{ModelPath: goldenModelPath, Workers: 1, QueueDepth: 8})

	block := make(chan struct{})
	defer func() {
		select {
		case <-block:
		default:
			close(block)
		}
	}()
	go func() { _ = s.submit(context.Background(), func() { <-block }) }()
	waitFor(t, "worker busy", func() bool { return s.inFlight.Load() == 1 })

	raw, _ := json.Marshal(simulateRequest{Page: "m.cnn.com", ReadingS: 1})
	req, _ := http.NewRequest(http.MethodPost, base+"/v1/simulate", bytes.NewReader(raw))
	req.Header.Set("X-Request-Timeout-Ms", "50")
	start := time.Now()
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("deadline request: status %d, want 504", resp.StatusCode)
	}
	if waited := time.Since(start); waited > 3*time.Second {
		t.Fatalf("504 took %v; the deadline did not fire", waited)
	}
	// The skipped job never ran: the worker sees its dead context and drops it.
	close(block)
	waitFor(t, "queue drained", func() bool { return len(s.queue) == 0 })
}

// TestPanicRecovery checks a panicking request fails alone — counted, turned
// into an error, worker and process intact.
func TestPanicRecovery(t *testing.T) {
	s, base := startServer(t, Config{ModelPath: goldenModelPath, Workers: 1})

	err := s.submit(context.Background(), func() { panic("boom") })
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("panicking job returned %v", err)
	}
	if got := s.panics.Load(); got != 1 {
		t.Fatalf("panics counter %d, want 1", got)
	}
	// The lone worker survived and keeps serving.
	if code := postJSON(t, base+"/v1/predict", predictRequest{Features: probeVec[:]}, nil); code != http.StatusOK {
		t.Fatalf("predict after panic: %d", code)
	}
}

// TestGracefulShutdown checks Shutdown drains in-flight work, then refuses
// new submissions, and leaves metrics readable for the final flush.
func TestGracefulShutdown(t *testing.T) {
	s, _ := startServer(t, Config{ModelPath: goldenModelPath, Workers: 2})

	var finished bool
	done := make(chan error, 1)
	go func() {
		done <- s.submit(context.Background(), func() {
			time.Sleep(100 * time.Millisecond)
			finished = true
		})
	}()
	waitFor(t, "job in flight", func() bool { return s.inFlight.Load() == 1 })

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("in-flight job failed: %v", err)
	}
	if !finished {
		t.Fatal("Shutdown returned before the in-flight job finished")
	}
	if s.Ready() {
		t.Fatal("ready after Shutdown")
	}
	if err := s.submit(context.Background(), func() {}); err != errShuttingDown {
		t.Fatalf("submit after Shutdown: %v, want errShuttingDown", err)
	}
	// The final metrics flush still works after Shutdown.
	var buf bytes.Buffer
	if err := s.WriteMetrics(&buf); err != nil {
		t.Fatalf("WriteMetrics after Shutdown: %v", err)
	}
}

// TestStartFailsFastOnBadAddr checks a structurally bad listen address is
// not retried: with an hour-long backoff configured, Start must still return
// immediately.
func TestStartFailsFastOnBadAddr(t *testing.T) {
	p := retry.DefaultPolicy()
	p.InitialDelay = time.Hour
	p.MaxDelay = time.Hour
	s, err := New(Config{Addr: "127.0.0.1:notaport", Retry: p})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	err = s.Start(context.Background())
	if err == nil {
		t.Fatal("Start bound a nonsense address")
	}
	if took := time.Since(start); took > 10*time.Second {
		t.Fatalf("Start retried a permanent bind error for %v", took)
	}
}

func TestStartLoadsModelThroughRetry(t *testing.T) {
	// The model file appears only after the first load attempt fails: the
	// retry loop must ride it out.
	path := filepath.Join(t.TempDir(), "late.json")
	p := fastRetry()
	p.MaxAttempts = 10
	p.InitialDelay = 20 * time.Millisecond
	p.MaxDelay = 20 * time.Millisecond
	s, err := New(Config{Addr: "127.0.0.1:0", ModelPath: path, Retry: p})
	if err != nil {
		t.Fatal(err)
	}
	golden, err := os.ReadFile(goldenModelPath)
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() { errc <- s.Start(context.Background()) }()
	time.Sleep(30 * time.Millisecond)
	if err := os.WriteFile(path, golden, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := <-errc; err != nil {
		t.Fatalf("Start did not survive a late-appearing model: %v", err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	}()
	if !s.Ready() {
		t.Fatal("not ready after late model load")
	}
}

// BenchmarkPredictCore measures the serving hot path behind the HTTP and
// queue layers; the soak harness additionally pins it at zero allocations.
func BenchmarkPredictCore(b *testing.B) {
	s, err := New(Config{ModelPath: goldenModelPath})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := s.model.load(goldenModelPath); err != nil {
		b.Fatal(err)
	}
	vec := probeVec
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.predictCore(&vec); err != nil {
			b.Fatal(err)
		}
	}
}
