package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"testing"
	"time"
)

// --- JSON bit-identity ------------------------------------------------------

// jsonEncode runs v through the exact encoder writeJSON uses (json.Encoder,
// trailing newline, HTML escaping on).
func jsonEncode(t testing.TB, v any) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(v); err != nil {
		t.Fatalf("encode %v: %v", v, err)
	}
	return buf.Bytes()
}

// floatCorpus covers the encoding edge cases: the 'f'/'e' format boundary at
// 1e-6 and 1e21, the e-0X exponent cleanup, negative zero, subnormals, and
// extreme magnitudes.
var floatCorpus = []float64{
	0, math.Copysign(0, -1), 1, -1, 0.1, -0.1, 3.5, 36.82798051958943,
	1e-6, 9.999999e-7, 1e-7, 1e-5, -1e-7, 2.5e-8, 1e-21,
	1e21, 9.99999999e20, 1.00000001e21, -1e21, 2.3e42, 7e100,
	math.MaxFloat64, -math.MaxFloat64, math.SmallestNonzeroFloat64,
	-math.SmallestNonzeroFloat64, 4.9e-324, 2.2250738585072014e-308,
	1.7976931348623157e308, 1e-300, 1e300, 123456789.123456789,
	0.30000000000000004, 1. / 3., math.Pi, math.E, 1e15, 1e16, 1e17,
	-2.5, 1024, 65535.5, 1e-1, 5e-324,
}

func TestAppendJSONFloatBitIdentity(t *testing.T) {
	check := func(f float64) {
		t.Helper()
		got, ok := appendJSONFloat(nil, f)
		if !ok {
			t.Fatalf("appendJSONFloat(%v) refused a finite float", f)
		}
		want, err := json.Marshal(f)
		if err != nil {
			t.Fatalf("json.Marshal(%v): %v", f, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("appendJSONFloat(%v) = %q, encoding/json = %q", f, got, want)
		}
	}
	for _, f := range floatCorpus {
		check(f)
	}
	// Random sweep: uniform bit patterns (skipping non-finite) plus
	// mantissa×10^exp values across the whole exponent range.
	rng := rand.New(rand.NewSource(20130709))
	for i := 0; i < 20000; i++ {
		f := math.Float64frombits(rng.Uint64())
		if math.IsNaN(f) || math.IsInf(f, 0) {
			continue
		}
		check(f)
	}
	for i := 0; i < 20000; i++ {
		f := (rng.Float64() - 0.5) * math.Pow(10, float64(rng.Intn(60)-30))
		check(f)
	}
	// Non-finite values must be refused (encoding/json errors on them; the
	// handler falls back).
	for _, f := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if _, ok := appendJSONFloat(nil, f); ok {
			t.Fatalf("appendJSONFloat(%v) accepted a non-finite float", f)
		}
	}
}

func TestAppendJSONStringBitIdentity(t *testing.T) {
	corpus := []string{
		"", "umts", "beyond-Td", "delay-driven", "plain ascii",
		`quote " and \ backslash`, "newline\nand\ttab\rand more",
		"html <b>&amp;</b>", "ctrl \x01\x1f bytes", "héllo wörld",
		"日本語テキスト", "emoji 🙂 ok", "invalid \xff utf8", "trunc \xe2\x82",
		"line sep \u2028 and para \u2029 end", "\u2028", "mixed <\n\xffé\u2029>",
	}
	for _, s := range corpus {
		got := appendJSONString(nil, s)
		want, err := json.Marshal(s)
		if err != nil {
			t.Fatalf("json.Marshal(%q): %v", s, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("appendJSONString(%q) = %q, encoding/json = %q", s, got, want)
		}
	}
}

func TestFastResponseBitIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	randFloat := func() float64 {
		return (rng.Float64() - 0.5) * math.Pow(10, float64(rng.Intn(40)-20))
	}
	for i := 0; i < 2000; i++ {
		sec := randFloat()
		gen := rng.Uint64()
		pr := predictResponse{ReadingSeconds: sec, ModelGeneration: gen, Radio: "umts"}
		got, ok := appendPredictResponse(nil, sec, gen, "umts")
		if !ok {
			t.Fatalf("appendPredictResponse refused %v", sec)
		}
		if want := jsonEncode(t, pr); !bytes.Equal(got, want) {
			t.Fatalf("predict response:\n fast %q\n json %q", got, want)
		}

		dr := decideResponse{
			ReadingSeconds:  sec,
			Switch:          rng.Intn(2) == 1,
			Reason:          []string{"beyond-Td", "beyond-Tp", "keep"}[rng.Intn(3)],
			Mode:            []string{"delay", "power"}[rng.Intn(2)],
			TpSeconds:       randFloat(),
			TdSeconds:       randFloat(),
			ModelGeneration: gen,
		}
		if got, ok = appendDecideResponse(nil, &dr); !ok {
			t.Fatalf("appendDecideResponse refused %+v", dr)
		}
		if want := jsonEncode(t, dr); !bytes.Equal(got, want) {
			t.Fatalf("decide response:\n fast %q\n json %q", got, want)
		}

		preds := make([]float64, rng.Intn(5)+1)
		for j := range preds {
			preds[j] = randFloat()
		}
		if got, ok = appendBatchResponse(nil, preds, gen); !ok {
			t.Fatalf("appendBatchResponse refused %v", preds)
		}
		want := jsonEncode(t, batchResponse{ReadingSeconds: preds, ModelGeneration: gen})
		if !bytes.Equal(got, want) {
			t.Fatalf("batch response:\n fast %q\n json %q", got, want)
		}
	}
}

// TestFastNumberParseBitIdentity checks the fast number parser agrees with
// strconv.ParseFloat (which is what encoding/json uses) on every number it
// accepts, across both the Clinger fast path and the strconv spill.
func TestFastNumberParseBitIdentity(t *testing.T) {
	corpus := []string{
		"0", "-0", "1", "12", "340", "0.8", "2800", "-2.5", "1e3", "1E3",
		"1e+3", "1e-3", "0.1", "123.456", "1e22", "1e23", "-1e-22", "1e-23",
		"9007199254740992", "9007199254740993", "18446744073709551615",
		"184467440737095516159", "0.30000000000000004", "1e-308", "1e-320",
		"2.2250738585072014e-308", "1.7976931348623157e308",
		"123456789012345678901234567890.5", "3.141592653589793",
		"5e-324", "4.9e-324", "1e-325",
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 20000; i++ {
		f := math.Float64frombits(rng.Uint64())
		if math.IsNaN(f) || math.IsInf(f, 0) {
			continue
		}
		corpus = append(corpus, strconv.FormatFloat(f, 'g', -1, 64))
	}
	for _, s := range corpus {
		p := fastParser{b: []byte(s)}
		got, ok := p.number()
		want, err := strconv.ParseFloat(s, 64)
		if err != nil {
			// Out of range: the fast parser must refuse too (fallback).
			if ok {
				t.Fatalf("number(%q) accepted what strconv refused", s)
			}
			continue
		}
		if !ok {
			t.Fatalf("number(%q) refused a valid number", s)
		}
		if p.i != len(s) {
			t.Fatalf("number(%q) stopped at %d", s, p.i)
		}
		if got != want || math.Signbit(got) != math.Signbit(want) {
			t.Fatalf("number(%q) = %v, strconv = %v", s, got, want)
		}
	}
	// Invalid JSON numbers the fast parser must reject.
	for _, s := range []string{"01", "+1", ".5", "1.", "1e", "1e+", "-", "abc", "1e999", "NaN", "Infinity"} {
		p := fastParser{b: []byte(s)}
		if f, ok := p.number(); ok && p.i == len(s) {
			t.Fatalf("number(%q) = %v, want reject", s, f)
		}
	}
}

// --- wire-level fast/fallback parity ---------------------------------------

// TestFastPathWireParity drives a running server with canonical and
// non-canonical bodies and checks the response bytes equal what the
// encoding/json pipeline produces for the same answer — i.e. the fast path
// is invisible on the wire.
func TestFastPathWireParity(t *testing.T) {
	_, base := startServer(t, Config{ModelPath: goldenModelPath})

	post := func(path, body string) (int, []byte) {
		t.Helper()
		resp, err := http.Post(base+path, "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Fatalf("POST %s: Content-Type %q", path, ct)
		}
		return resp.StatusCode, data
	}

	featsJSON := `[12,340,25,4,9,120,0.8,3,2800,320]`
	canonical := fmt.Sprintf(`{"features":%s}`, featsJSON)

	// The same request in canonical (fast-path) and non-canonical
	// (fallback: spread whitespace, reordered keys, escaped radio, odd key
	// case) spellings must produce byte-identical 200 bodies.
	variants := []string{
		canonical,
		fmt.Sprintf(`{"features":%s,"radio":"umts"}`, featsJSON),
		fmt.Sprintf(` { "features" : %s , "radio" : "umts" } `, featsJSON),
		fmt.Sprintf(`{"radio":"umts","features":%s}`, featsJSON),
		fmt.Sprintf(`{"features":%s,"radio":"\u0075mts"}`, featsJSON),
		fmt.Sprintf(`{"Features":%s,"Radio":"umts"}`, featsJSON),
		fmt.Sprintf(`{"features":[1],"features":%s}`, featsJSON), // duplicate key: last wins
	}
	code0, want := post("/v1/predict", canonical)
	if code0 != http.StatusOK {
		t.Fatalf("canonical predict: %d (%s)", code0, want)
	}
	var pr predictResponse
	if err := json.Unmarshal(want, &pr); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, jsonEncode(t, pr)) {
		t.Fatalf("fast predict body %q is not encoding/json-identical", want)
	}
	for _, body := range variants {
		code, got := post("/v1/predict", body)
		if code != http.StatusOK {
			t.Fatalf("predict %q: status %d (%s)", body, code, got)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("predict %q:\n got %q\nwant %q", body, got, want)
		}
	}

	// Decide: fast and fallback spellings agree byte for byte.
	dcanon := fmt.Sprintf(`{"features":%s,"mode":"power"}`, featsJSON)
	code0, dwant := post("/v1/decide", dcanon)
	if code0 != http.StatusOK {
		t.Fatalf("canonical decide: %d (%s)", code0, dwant)
	}
	var dr decideResponse
	if err := json.Unmarshal(dwant, &dr); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dwant, jsonEncode(t, dr)) {
		t.Fatalf("fast decide body %q is not encoding/json-identical", dwant)
	}
	if code, got := post("/v1/decide", fmt.Sprintf(`{"mode":"power","features": %s}`, featsJSON)); code != http.StatusOK || !bytes.Equal(got, dwant) {
		t.Fatalf("decide fallback spelling: %d %q want %q", code, got, dwant)
	}

	// Error bodies ride the fallback and keep the legacy statuses/messages.
	errCases := []struct {
		path, body string
		status     int
		substr     string
	}{
		{"/v1/predict", `{"features":[1,2,3]}`, http.StatusBadRequest, "need exactly"},
		{"/v1/predict", `{"bogus":1}`, http.StatusBadRequest, "unknown field"},
		{"/v1/predict", canonical + `{"again":true}`, http.StatusBadRequest, "trailing data"},
		{"/v1/predict", `{"features":[1e999]}`, http.StatusBadRequest, "cannot unmarshal number"},
		{"/v1/predict", `not json`, http.StatusBadRequest, "bad request body"},
		{"/v1/predict", fmt.Sprintf(`{"features":%s,"radio":"5g"}`, featsJSON), http.StatusBadRequest, "unknown radio profile"},
		{"/v1/decide", fmt.Sprintf(`{"features":%s,"mode":"warp"}`, featsJSON), http.StatusBadRequest, "unknown mode"},
	}
	for _, tc := range errCases {
		code, got := post(tc.path, tc.body)
		if code != tc.status {
			t.Fatalf("%s %q: status %d want %d (%s)", tc.path, tc.body, code, tc.status, got)
		}
		if !bytes.Contains(got, []byte(tc.substr)) {
			t.Fatalf("%s %q: body %q missing %q", tc.path, tc.body, got, tc.substr)
		}
	}
}

// --- /v1/predict_batch ------------------------------------------------------

func TestPredictBatch(t *testing.T) {
	_, base := startServer(t, Config{ModelPath: goldenModelPath})

	// Batch answers must match per-row /v1/predict answers exactly.
	rows := [][]float64{
		probeVec[:],
		{1, 2, 3, 4, 5, 6, 7, 8, 9, 10},
		{40, 1200, 80, 9, 2, 300, 0.1, 1, 5000, 100},
	}
	var want []float64
	for _, row := range rows {
		var pr predictResponse
		if code := postJSON(t, base+"/v1/predict", predictRequest{Features: row}, &pr); code != http.StatusOK {
			t.Fatalf("predict row: %d", code)
		}
		want = append(want, pr.ReadingSeconds)
	}
	var br batchResponse
	if code := postJSON(t, base+"/v1/predict_batch", batchRequest{Features: rows}, &br); code != http.StatusOK {
		t.Fatalf("predict_batch: %d", code)
	}
	if len(br.ReadingSeconds) != len(want) {
		t.Fatalf("batch returned %d rows, want %d", len(br.ReadingSeconds), len(want))
	}
	for i, w := range want {
		if br.ReadingSeconds[i] != w {
			t.Fatalf("batch row %d: %v, single predict %v", i, br.ReadingSeconds[i], w)
		}
	}
	if br.ModelGeneration != 1 {
		t.Fatalf("batch generation %d", br.ModelGeneration)
	}

	// The fallback (encoding/json) spelling answers the same bytes.
	raw, _ := json.Marshal(batchRequest{Features: rows})
	resp, err := http.Post(base+"/v1/predict_batch", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	fastBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	spread := bytes.ReplaceAll(raw, []byte(","), []byte(" , "))
	resp, err = http.Post(base+"/v1/predict_batch", "application/json", bytes.NewReader(spread))
	if err != nil {
		t.Fatal(err)
	}
	slowBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !bytes.Equal(fastBody, slowBody) {
		t.Fatalf("batch fast/fallback bytes differ:\n%q\n%q", fastBody, slowBody)
	}

	// Validation contract.
	var huge bytes.Buffer
	huge.WriteString(`{"features":[`)
	for i := 0; i <= maxBatchRows; i++ {
		if i > 0 {
			huge.WriteByte(',')
		}
		huge.WriteString(`[0,0,0,0,0,0,0,0,0,0]`)
	}
	huge.WriteString(`]}`)
	bad := []struct {
		name, body string
		substr     string
	}{
		{"empty object", `{}`, "empty batch"},
		{"empty rows", `{"features":[]}`, "empty batch"},
		{"short row", `{"features":[[1,2,3]]}`, "vector 0: need exactly"},
		{"second row short", `{"features":[[1,2,3,4,5,6,7,8,9,10],[1]]}`, "vector 1: need exactly"},
		{"unknown field", `{"rows":[[1]]}`, "unknown field"},
		{"not json", `nope`, "bad request body"},
		{"too many rows", huge.String(), fmt.Sprintf("exceeds %d", maxBatchRows)},
	}
	for _, tc := range bad {
		resp, err := http.Post(base+"/v1/predict_batch", "application/json", bytes.NewReader([]byte(tc.body)))
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d (%s)", tc.name, resp.StatusCode, data)
		}
		if !bytes.Contains(data, []byte(tc.substr)) {
			t.Fatalf("%s: body %q missing %q", tc.name, data, tc.substr)
		}
	}

	// Metrics count batches and items separately.
	var m Metrics
	if code := postJSON(t, base+"/metrics", nil, nil); code == 0 {
		t.Fatal("unreachable")
	}
	resp2, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp2.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if m.Obs.Counters[counterBatch] < 3 {
		t.Fatalf("batch counter: %+v", m.Obs.Counters)
	}
	if m.Obs.Counters[counterBatchItems] < int64(3*len(rows)) {
		t.Fatalf("batch items counter: %+v", m.Obs.Counters)
	}
	if m.Obs.Histograms[latencyBatch].Count < 3 {
		t.Fatalf("batch histogram: %+v", m.Obs.Histograms)
	}
}

// --- zero-allocation gates --------------------------------------------------

// benchWriter is a reusable ResponseWriter that only counts bytes; the header
// map is allocated once and reused across requests like a live connection's.
type benchWriter struct {
	h      http.Header
	status int
	n      int
}

func newBenchWriter() *benchWriter { return &benchWriter{h: make(http.Header, 4)} }

func (w *benchWriter) Header() http.Header         { return w.h }
func (w *benchWriter) Write(b []byte) (int, error) { w.n += len(b); return len(b), nil }
func (w *benchWriter) WriteHeader(c int)           { w.status = c }
func (w *benchWriter) reset()                      { w.status = 0; w.n = 0 }

// benchBody is a rewindable request body.
type benchBody struct {
	data []byte
	off  int
}

func (b *benchBody) Read(p []byte) (int, error) {
	if b.off >= len(b.data) {
		return 0, io.EOF
	}
	n := copy(p, b.data[b.off:])
	b.off += n
	return n, nil
}

func (b *benchBody) Close() error { return nil }
func (b *benchBody) rewind()      { b.off = 0 }

// newFastServer builds an unstarted server with a loaded model — handlers
// work without a listener.
func newFastServer(t testing.TB) *Server {
	t.Helper()
	s, err := New(Config{ModelPath: goldenModelPath})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.model.load(goldenModelPath); err != nil {
		t.Fatal(err)
	}
	s.accepting.Store(true)
	return s
}

// handlerAllocs measures steady-state allocations per request for one
// endpoint served through the full Handler (router, middleware, body read,
// parse, predict, encode, write).
func handlerAllocs(t *testing.T, s *Server, path, body string) float64 {
	t.Helper()
	if raceEnabled {
		t.Skip("race detector randomizes sync.Pool; alloc gates hold only in normal builds")
	}
	h := s.Handler()
	w := newBenchWriter()
	rb := &benchBody{data: []byte(body)}
	req := &http.Request{
		Method: http.MethodPost,
		URL:    &url.URL{Path: path},
		Body:   rb,
	}
	run := func() {
		rb.rewind()
		w.reset()
		h.ServeHTTP(w, req)
		if w.status != 0 && w.status != http.StatusOK {
			t.Fatalf("%s: status %d", path, w.status)
		}
	}
	// Warm the scratch/connection state like a live keep-alive connection.
	for i := 0; i < 100; i++ {
		run()
	}
	return testing.AllocsPerRun(500, run)
}

func TestServePredictZeroAllocs(t *testing.T) {
	s := newFastServer(t)
	body := `{"features":[12,340,25,4,9,120,0.8,3,2800,320]}`
	if got := handlerAllocs(t, s, "/v1/predict", body); got != 0 {
		t.Fatalf("/v1/predict allocates %v per request, want 0", got)
	}
}

func TestServeDecideZeroAllocs(t *testing.T) {
	s := newFastServer(t)
	body := `{"features":[12,340,25,4,9,120,0.8,3,2800,320],"mode":"power"}`
	if got := handlerAllocs(t, s, "/v1/decide", body); got != 0 {
		t.Fatalf("/v1/decide allocates %v per request, want 0", got)
	}
}

func TestServePredictBatchSteadyAllocs(t *testing.T) {
	s := newFastServer(t)
	var b bytes.Buffer
	b.WriteString(`{"features":[`)
	for i := 0; i < 64; i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `[12,%d,25,4,9,120,0.8,3,2800,320]`, 340+i)
	}
	b.WriteString(`]}`)
	if got := handlerAllocs(t, s, "/v1/predict_batch", b.String()); got != 0 {
		t.Fatalf("/v1/predict_batch allocates %v per request, want 0", got)
	}
}

// BenchmarkServePredict measures the full end-to-end request path without a
// socket: router, middleware, body read, fast parse, forest walk, fast
// encode, write. The allocs/op report is the headline 0.
func BenchmarkServePredict(b *testing.B) {
	s := newFastServer(b)
	h := s.Handler()
	w := newBenchWriter()
	rb := &benchBody{data: []byte(`{"features":[12,340,25,4,9,120,0.8,3,2800,320]}`)}
	req := &http.Request{Method: http.MethodPost, URL: &url.URL{Path: "/v1/predict"}, Body: rb}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rb.rewind()
		w.reset()
		h.ServeHTTP(w, req)
	}
	if w.status != 0 && w.status != http.StatusOK {
		b.Fatalf("status %d", w.status)
	}
}

func BenchmarkServeDecide(b *testing.B) {
	s := newFastServer(b)
	h := s.Handler()
	w := newBenchWriter()
	rb := &benchBody{data: []byte(`{"features":[12,340,25,4,9,120,0.8,3,2800,320],"mode":"power"}`)}
	req := &http.Request{Method: http.MethodPost, URL: &url.URL{Path: "/v1/decide"}, Body: rb}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rb.rewind()
		w.reset()
		h.ServeHTTP(w, req)
	}
}

func BenchmarkServePredictBatch64(b *testing.B) {
	s := newFastServer(b)
	var body bytes.Buffer
	body.WriteString(`{"features":[`)
	for i := 0; i < 64; i++ {
		if i > 0 {
			body.WriteByte(',')
		}
		fmt.Fprintf(&body, `[12,%d,25,4,9,120,0.8,3,2800,320]`, 340+i)
	}
	body.WriteString(`]}`)
	h := s.Handler()
	w := newBenchWriter()
	rb := &benchBody{data: body.Bytes()}
	req := &http.Request{Method: http.MethodPost, URL: &url.URL{Path: "/v1/predict_batch"}, Body: rb}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rb.rewind()
		w.reset()
		h.ServeHTTP(w, req)
	}
}

// --- concurrency ------------------------------------------------------------

// TestStripedStateHammer pounds the fast lane from many goroutines while
// reloads swap the model and /metrics folds the stripes — run under -race
// this proves the striped counters, COW maps and atomic model snapshot are
// data-race free.
func TestStripedStateHammer(t *testing.T) {
	s := newFastServer(t)
	h := s.Handler()
	stop := make(chan struct{})
	var wg sync.WaitGroup

	bodies := []struct{ path, body string }{
		{"/v1/predict", `{"features":[12,340,25,4,9,120,0.8,3,2800,320]}`},
		{"/v1/decide", `{"features":[12,340,25,4,9,120,0.8,3,2800,320],"mode":"power"}`},
		{"/v1/predict_batch", `{"features":[[12,340,25,4,9,120,0.8,3,2800,320],[1,2,3,4,5,6,7,8,9,10]]}`},
	}
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			w := newBenchWriter()
			rb := &benchBody{}
			tc := bodies[g%len(bodies)]
			rb.data = []byte(tc.body)
			req := &http.Request{Method: http.MethodPost, URL: &url.URL{Path: tc.path}, Body: rb}
			for {
				select {
				case <-stop:
					return
				default:
				}
				rb.rewind()
				w.reset()
				h.ServeHTTP(w, req)
				if w.status != 0 && w.status != http.StatusOK {
					t.Errorf("%s: status %d", tc.path, w.status)
					return
				}
			}
		}(g)
	}
	// Concurrent reloads and metrics snapshots.
	wg.Add(2)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := s.Reload(); err != nil {
				t.Errorf("reload: %v", err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			m := s.MetricsSnapshot()
			if m.Obs.Counters[counterPredict] < 0 {
				t.Error("negative counter")
				return
			}
		}
	}()
	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()

	// Every request landed in some stripe: totals are consistent.
	m := s.MetricsSnapshot()
	total := m.Obs.Counters[counterPredict] + m.Obs.Counters[counterDecide] + m.Obs.Counters[counterBatch]
	if total == 0 {
		t.Fatal("hammer recorded no requests")
	}
}

// TestPredictDuringSlowReload holds a reload at the publish seam and checks
// the read path keeps answering from the old snapshot instead of blocking
// behind the reload — the contract that lets operators reload a saturated
// server.
func TestPredictDuringSlowReload(t *testing.T) {
	s := newFastServer(t)
	gen0 := s.model.generation()

	entered := make(chan struct{})
	release := make(chan struct{})
	modelReadHook = func() {
		close(entered)
		<-release
	}
	defer func() { modelReadHook = nil }()

	done := make(chan error, 1)
	go func() {
		_, err := s.Reload()
		done <- err
	}()
	<-entered

	// The reload is wedged mid-flight; predictions must not block.
	vec := probeVec
	for i := 0; i < 100; i++ {
		start := time.Now()
		res, err := s.predictCore(&vec)
		if err != nil {
			t.Fatalf("predict during reload: %v", err)
		}
		if res.gen != gen0 {
			t.Fatalf("predict during reload saw generation %d, want %d", res.gen, gen0)
		}
		if d := time.Since(start); d > time.Second {
			t.Fatalf("predict blocked %v behind a wedged reload", d)
		}
	}

	close(release)
	if err := <-done; err != nil {
		t.Fatalf("reload: %v", err)
	}
	if g := s.model.generation(); g != gen0+1 {
		t.Fatalf("generation after reload %d, want %d", g, gen0+1)
	}
}

// TestScratchStripeAssignment checks the pool deals stripes round-robin so
// counts spread instead of all landing on stripe 0.
func TestScratchStripeAssignment(t *testing.T) {
	s := newFastServer(t)
	if len(s.stripes)&(len(s.stripes)-1) != 0 {
		t.Fatalf("stripe count %d is not a power of two", len(s.stripes))
	}
	seen := make(map[*stripe]bool)
	var scs []*scratch
	for i := 0; i < 4*len(s.stripes); i++ {
		sc := s.getScratch()
		scs = append(scs, sc)
		seen[sc.st] = true
	}
	for _, sc := range scs {
		s.putScratch(sc)
	}
	if len(seen) != len(s.stripes) {
		t.Fatalf("scratches covered %d/%d stripes", len(seen), len(s.stripes))
	}
}
