// Package serve is the resident prediction service behind cmd/easerd: it
// loads a trained GBRT reading-time model and answers the paper's core loop
// — predict reading time, decide fast dormancy per page visit — over HTTP,
// staying up for days while models are retrained and swapped underneath it.
//
// The request path has two lanes. Prediction endpoints (/v1/predict,
// /v1/decide, /v1/predict_batch) run inline in the connection goroutine —
// each prediction is microseconds of pure CPU, so a queue hop would cost
// more than the work — over a zero-allocation fast path: pooled scratch
// buffers, a hand-rolled JSON encoder/decoder for the fixed v1 schemas
// (bit-identical to encoding/json, with a fallback to the real decoder for
// anything the fast parser does not recognize), and per-CPU striped metrics.
// Simulation (/v1/simulate) is milliseconds of work per request and keeps
// the bounded worker-pool queue with its 429/504 backpressure contract.
//
// The robustness contracts, in one place:
//
//   - Bounded work. Every request body is size-capped and carries a
//     deadline. Simulations run on a fixed worker pool behind a bounded
//     queue; a full queue answers 429 with Retry-After instead of growing
//     goroutines or memory. Prediction bodies are read into pooled buffers
//     with the same size cap, and batch requests bound their row count.
//   - Fail one request, not the process. A panic anywhere in a handler is
//     recovered per request (500), counted, and the process lives on.
//   - Hot reload by validate-then-swap. A candidate model file is parsed,
//     validated and probe-evaluated before an atomic pointer swap publishes
//     it; a bad file leaves the old model serving (rollback is the default,
//     not a recovery step). Requests snapshot the pointer once, so none ever
//     observes a partially swapped model.
//   - Graceful shutdown. Stop accepting, drain in-flight requests, then
//     stop the workers; /readyz flips to 503 first so load balancers move on.
//
// Health and introspection: /healthz (process up), /readyz (model loaded and
// accepting), /metrics (obs counters/histograms plus queue depth, in-flight
// count, reloads and rejects).
package serve

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"eabrowse/internal/browser"
	"eabrowse/internal/experiments"
	"eabrowse/internal/retry"
	"eabrowse/internal/rrc"
	"eabrowse/internal/webpage"
)

// Config describes one service instance.
type Config struct {
	// Addr is the listen address (host:port; ":0" picks a free port).
	Addr string
	// ModelPath is the predictor file loaded at startup and on reload. Empty
	// means "start without a model": /readyz stays 503 until a reload
	// succeeds.
	ModelPath string
	// Workers is the prediction worker-pool size. <= 0 means GOMAXPROCS.
	Workers int
	// QueueDepth bounds the backlog between the HTTP front and the workers.
	// <= 0 means 256. A full queue rejects with 429 + Retry-After.
	QueueDepth int
	// RequestTimeout is the per-request deadline propagated via context.
	// <= 0 means 5 s. Clients may shorten (never extend) it with an
	// X-Request-Timeout-Ms header.
	RequestTimeout time.Duration
	// MaxBodyBytes caps request bodies. <= 0 means 1 MiB.
	MaxBodyBytes int64
	// Retry governs startup model loading and listener binding, so a file
	// mid-rewrite or an address still held by the previous instance does not
	// kill the service.
	Retry retry.Policy
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 5 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.Retry.MaxAttempts == 0 {
		c.Retry = retry.DefaultPolicy()
	}
	return c
}

// Sentinel errors of the request path, mapped to HTTP statuses by the
// handlers.
var (
	errQueueFull    = errors.New("serve: worker queue full")
	errShuttingDown = errors.New("serve: shutting down")
)

// job is one unit of work handed to the pool. The handler goroutine waits on
// done (or its context); the worker closes done exactly once.
type job struct {
	ctx  context.Context
	fn   func()
	done chan struct{}
	err  error
}

// Server is the resident service. Build with New, bring up with Start, stop
// with Shutdown.
type Server struct {
	cfg   Config
	model modelHolder

	queue    chan *job
	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	ln      net.Listener
	httpSrv *http.Server

	accepting atomic.Bool
	started   atomic.Bool
	startedAt time.Time

	inFlight atomic.Int64
	requests atomic.Uint64
	rejects  atomic.Uint64
	panics   atomic.Uint64

	// Request-path counters and latency histograms live in per-CPU stripes
	// of atomics (see stripes.go); /metrics folds them into the obs.Metrics
	// shape the old mutex-guarded recorder produced. The scratch pool hands
	// each request its reusable buffers plus the stripe it counts into.
	stripes     []stripe
	stripeRotor atomic.Int64
	scratch     sync.Pool
	// radioNames caches rrc.Profiles() so the fast parser can resolve radio
	// bytes to canonical strings without allocating.
	radioNames []string

	// Per-request simulation machinery: benchmark pages cached by name,
	// pooled zero-alloc sessions per (browser mode, radio profile). Both
	// maps are copy-on-write — readers follow the atomic pointer lock-free,
	// the mutexes only serialize the (rare) writers.
	pagesMu sync.Mutex
	pages   atomic.Pointer[map[string]*webpage.Page]
	poolsMu sync.Mutex
	pools   atomic.Pointer[map[poolKey]*experiments.SessionPool]
}

// poolKey identifies one session pool: pooled sessions are homogeneous in
// both pipeline mode and radio backend.
type poolKey struct {
	mode  browser.Mode
	radio string
}

// pool returns the session pool for (mode, radio), building non-UMTS pools
// lazily on first use. The radio name must already be validated. The read
// side is one atomic load; a miss takes the writer lock, re-checks, and
// publishes a copied map so concurrent readers never see a partial write.
func (s *Server) pool(mode browser.Mode, radio string) (*experiments.SessionPool, error) {
	key := poolKey{mode: mode, radio: radio}
	if p, ok := (*s.pools.Load())[key]; ok {
		return p, nil
	}
	s.poolsMu.Lock()
	defer s.poolsMu.Unlock()
	cur := *s.pools.Load()
	if p, ok := cur[key]; ok {
		return p, nil
	}
	spec, err := rrc.ProfileSpec(radio)
	if err != nil {
		return nil, err
	}
	p := experiments.NewSessionPool(mode, experiments.WithRadioModel(spec))
	next := make(map[poolKey]*experiments.SessionPool, len(cur)+1)
	for k, v := range cur {
		next[k] = v
	}
	next[key] = p
	s.pools.Store(&next)
	return p, nil
}

// New builds a server; no I/O happens until Start.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Retry.Validate(); err != nil {
		return nil, err
	}
	s := &Server{
		cfg:        cfg,
		queue:      make(chan *job, cfg.QueueDepth),
		stop:       make(chan struct{}),
		stripes:    make([]stripe, nextPow2(runtime.GOMAXPROCS(0))),
		radioNames: rrc.Profiles(),
	}
	s.scratch = s.newScratchPool()
	pages := make(map[string]*webpage.Page)
	s.pages.Store(&pages)
	pools := map[poolKey]*experiments.SessionPool{
		{browser.ModeOriginal, "umts"}: experiments.NewSessionPool(
			browser.ModeOriginal, experiments.WithRadioModel(rrc.DefaultConfig())),
		{browser.ModeEnergyAware, "umts"}: experiments.NewSessionPool(
			browser.ModeEnergyAware, experiments.WithRadioModel(rrc.DefaultConfig())),
	}
	s.pools.Store(&pools)
	s.httpSrv = &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	return s, nil
}

// nextPow2 rounds n up to a power of two.
func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// Start loads the configured model (retrying transient I/O), binds the
// listener (retrying a busy address), and begins serving. It returns once
// the service is accepting; serving continues in the background until
// Shutdown.
func (s *Server) Start(ctx context.Context) error {
	if s.started.Swap(true) {
		return errors.New("serve: already started")
	}
	if s.cfg.ModelPath != "" {
		err := retry.Do(ctx, s.cfg.Retry, func(context.Context) error {
			_, err := s.model.load(s.cfg.ModelPath)
			return err
		})
		if err != nil {
			return fmt.Errorf("serve: load model: %w", err)
		}
	}
	err := retry.Do(ctx, s.cfg.Retry, func(context.Context) error {
		ln, lerr := net.Listen("tcp", s.cfg.Addr)
		if lerr != nil {
			if isAddrError(lerr) {
				// A malformed address never binds, no matter how patiently
				// it is retried.
				return retry.Permanent(lerr)
			}
			return lerr
		}
		s.ln = ln
		return nil
	})
	if err != nil {
		return fmt.Errorf("serve: bind %s: %w", s.cfg.Addr, err)
	}

	for i := 0; i < s.cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	s.startedAt = time.Now()
	s.accepting.Store(true)
	go func() {
		// ErrServerClosed is the normal Shutdown path; anything else would
		// surface through failing requests and /healthz probes.
		_ = s.httpSrv.Serve(s.ln)
	}()
	return nil
}

// isAddrError reports a structurally bad listen address (vs a transiently
// unavailable one).
func isAddrError(err error) bool {
	var ae *net.AddrError
	if errors.As(err, &ae) {
		return true
	}
	// "missing port", "too many colons", unknown host in tests...
	var de *net.DNSError
	return errors.As(err, &de) && de.IsNotFound
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Reload loads cfg.ModelPath again and swaps it in if — and only if — it
// validates; otherwise the old model keeps serving and the error is
// returned. Safe to call concurrently (SIGHUP racing POST /admin/reload).
func (s *Server) Reload() (uint64, error) {
	if s.cfg.ModelPath == "" {
		return s.model.generation(), errors.New("serve: no model path configured")
	}
	lm, err := s.model.load(s.cfg.ModelPath)
	if err != nil {
		return s.model.generation(), err
	}
	return lm.gen, nil
}

// Ready reports whether the service is accepting work and has a model.
func (s *Server) Ready() bool {
	return s.accepting.Load() && s.model.current() != nil
}

// Shutdown stops the service gracefully: readiness flips first (load
// balancers drain), the HTTP server stops accepting and waits for in-flight
// requests up to ctx, then the workers finish whatever is still queued and
// exit. The obs collector's final snapshot remains readable via
// MetricsSnapshot/WriteMetrics after Shutdown returns.
// Shutdown is idempotent: later calls wait for the same drain.
func (s *Server) Shutdown(ctx context.Context) error {
	s.accepting.Store(false)
	var err error
	if s.httpSrv != nil {
		err = s.httpSrv.Shutdown(ctx)
	}
	// All connections are done (or ctx expired and stragglers will be cut
	// off); tell the workers to drain the queue and exit.
	s.stopOnce.Do(func() { close(s.stop) })
	s.wg.Wait()
	return err
}

// submit enqueues fn and waits for it to run, honoring backpressure and the
// request deadline. It never blocks on a full queue.
func (s *Server) submit(ctx context.Context, fn func()) error {
	if !s.accepting.Load() {
		s.rejects.Add(1)
		return errShuttingDown
	}
	j := &job{ctx: ctx, fn: fn, done: make(chan struct{})}
	select {
	case s.queue <- j:
	default:
		s.rejects.Add(1)
		return errQueueFull
	}
	select {
	case <-j.done:
		return j.err
	case <-ctx.Done():
		// The worker will see the dead context and skip the job; the
		// response goes out now either way.
		return ctx.Err()
	}
}

// worker executes queued jobs until told to stop, then drains what is left
// (skipping jobs whose requesters have given up) and exits.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case j := <-s.queue:
			s.runJob(j)
		default:
			select {
			case j := <-s.queue:
				s.runJob(j)
			case <-s.stop:
				return
			}
		}
	}
}

// runJob runs one job with per-request panic recovery: a panicking request
// fails alone; the worker — and the process — live on.
func (s *Server) runJob(j *job) {
	defer close(j.done)
	if j.ctx != nil && j.ctx.Err() != nil {
		j.err = j.ctx.Err()
		return
	}
	s.inFlight.Add(1)
	defer s.inFlight.Add(-1)
	defer func() {
		if r := recover(); r != nil {
			s.panics.Add(1)
			j.err = fmt.Errorf("serve: request panicked: %v", r)
		}
	}()
	j.fn()
}
