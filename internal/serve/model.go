package serve

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"eabrowse/internal/features"
	"eabrowse/internal/predictor"
	"eabrowse/internal/retry"
)

// errNoModel is returned on the request path before a model has been loaded.
var errNoModel = errors.New("serve: no model loaded")

// loadedModel is one immutable generation of the served model. Requests read
// the holder's atomic pointer once and keep the snapshot for their whole
// lifetime, so a reload mid-request can never mix two models' answers.
type loadedModel struct {
	pred *predictor.Predictor
	path string
	// gen counts successful loads from 1; it is echoed in responses and
	// metrics so clients and the soak harness can tell which model answered.
	gen      uint64
	loadedAt time.Time
}

// modelHolder owns the served model pointer. Loads are validate-then-swap:
// the candidate file is parsed, structurally validated and probe-evaluated
// off to the side, and only a fully usable model is atomically published.
// A bad file therefore rolls back for free — the old pointer was never
// touched, and requests in flight never observe a partial model.
type modelHolder struct {
	// mu serializes loaders (SIGHUP racing an admin reload); readers never
	// take it.
	mu  sync.Mutex
	cur atomic.Pointer[loadedModel]
	// failures counts rejected load attempts (the old model kept serving).
	failures atomic.Uint64
}

// current returns the serving model, or nil before the first load.
func (h *modelHolder) current() *loadedModel {
	return h.cur.Load()
}

// generation returns the serving model's generation (0 before the first
// load). Successful reloads = generation - 1.
func (h *modelHolder) generation() uint64 {
	if lm := h.cur.Load(); lm != nil {
		return lm.gen
	}
	return 0
}

// modelReadHook, when non-nil (tests only), runs after a candidate model has
// been read and validated but before it is published — a seam for holding a
// reload mid-flight to prove the read path never blocks behind it.
var modelReadHook func()

// load reads, validates and publishes the model at path. On any error the
// previously served model stays published untouched.
//
// The expensive part — file I/O, parse, probe evaluation — happens before
// the lock: a slow disk never serializes concurrent loaders, and readers
// (who never take mu at all, just one atomic pointer load) keep predicting
// on the old snapshot for the whole duration of a reload.
func (h *modelHolder) load(path string) (*loadedModel, error) {
	pred, err := readModel(path)
	if err != nil {
		h.failures.Add(1)
		return nil, err
	}
	if modelReadHook != nil {
		modelReadHook()
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	old := h.cur.Load()
	lm := &loadedModel{
		pred:     pred,
		path:     path,
		gen:      1,
		loadedAt: time.Now(),
	}
	if old != nil {
		lm.gen = old.gen + 1
	}
	h.cur.Store(lm)
	return lm, nil
}

// readModel parses and probe-evaluates a candidate model file without
// touching the served pointer. I/O errors come back plain (a retry loop may
// ride out a file mid-rewrite); validation errors are marked permanent —
// rereading a corrupt file cannot fix it.
func readModel(path string) (*predictor.Predictor, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("serve: read model: %w", err)
	}
	pred, err := predictor.LoadPredictor(bytes.NewReader(raw))
	if err != nil {
		return nil, retry.Permanent(fmt.Errorf("serve: invalid model file %s: %w", path, err))
	}
	// Belt and braces: the envelope validated, now prove the forest answers
	// a real feature vector with a finite number before anyone serves it.
	var probe features.Vector
	sec, err := pred.PredictVecSeconds(&probe)
	if err != nil {
		return nil, retry.Permanent(fmt.Errorf("serve: candidate model failed probe prediction: %w", err))
	}
	if sec != sec { // NaN
		return nil, retry.Permanent(errors.New("serve: candidate model predicts NaN"))
	}
	return pred, nil
}
