//go:build soak

// Soak harness for the resident service: a compressed day of traffic.
//
// The paper's deployment target is a phone-adjacent daemon that stays up for
// days while models are retrained underneath it. This harness compresses that
// life into a configurable wall-clock window (default 25 s, EASERD_SOAK_SECONDS
// to stretch it toward a real 24 h run) by driving requests back-to-back:
// concurrent predict/decide/simulate clients, a hot-reload loop flipping
// between two known models (with deliberately corrupt files mixed in), and a
// metrics poller — all against one server instance.
//
// What it proves, matching the package's robustness contracts:
//
//   - No partial model is ever observed: every prediction equals, bitwise,
//     what exactly one of the two known models says for that probe vector,
//     and the reported generation agrees with the value.
//   - Corrupt model files roll back: reload fails, service keeps answering.
//   - No request crashes the process; the panic counter stays zero.
//   - The steady-state predict core runs at 0 allocs/op (measured quiesced).
//   - Memory is flat: heap after the full run stays within noise of the
//     post-warmup baseline — no per-request leak survives a day of traffic.
//   - Shutdown drains cleanly at the end with in-flight work completed.
//
// Run it with the soak build tag (the fast unit suite stays tag-free):
//
//	go test -race -tags soak -run TestSoak ./internal/serve
//	EASERD_SOAK_SECONDS=3600 go test -tags soak -run TestSoak -timeout 2h ./internal/serve
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"eabrowse/internal/features"
	"eabrowse/internal/gbrt"
	"eabrowse/internal/predictor"
	"eabrowse/internal/trace"
)

// soakDuration is the compressed-day window; EASERD_SOAK_SECONDS overrides.
func soakDuration(t *testing.T) time.Duration {
	if s := os.Getenv("EASERD_SOAK_SECONDS"); s != "" {
		sec, err := strconv.Atoi(s)
		if err != nil || sec <= 0 {
			t.Fatalf("bad EASERD_SOAK_SECONDS=%q", s)
		}
		return time.Duration(sec) * time.Second
	}
	return 25 * time.Second
}

// trainSoakModel trains a small forest whose size makes it distinguishable.
func trainSoakModel(t *testing.T, trees int) *predictor.Predictor {
	t.Helper()
	ds, err := trace.Synthesize(trace.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	train, _, err := predictor.Split(ds.Visits, 0.3, 20130709)
	if err != nil {
		t.Fatal(err)
	}
	p, err := predictor.Train(train, predictor.Config{
		GBRT:                 gbrt.Config{Trees: trees, MaxLeaves: 8, Shrinkage: 0.1, MinSamplesLeaf: 5},
		UseInterestThreshold: true,
		Alpha:                2,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// heapInUse reports live heap bytes after a full GC.
func heapInUse() uint64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

func TestSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak is not a -short test")
	}
	dur := soakDuration(t)

	// Two distinguishable models: any prediction the service ever returns
	// must equal exactly one of their answers for the probe vector.
	modelA := trainSoakModel(t, 40)
	modelB := trainSoakModel(t, 60)
	probe := features.Vector{12, 340, 25, 4, 9, 120, 0.8, 3, 2800, 320}
	wantA, err := modelA.PredictVecSeconds(&probe)
	if err != nil {
		t.Fatal(err)
	}
	wantB, err := modelB.PredictVecSeconds(&probe)
	if err != nil {
		t.Fatal(err)
	}
	if wantA == wantB {
		t.Fatalf("soak models are indistinguishable (%v); partial-swap detection would be blind", wantA)
	}

	dir := t.TempDir()
	path := filepath.Join(dir, "model.json")
	if err := modelA.SaveFile(path); err != nil {
		t.Fatal(err)
	}

	s, base := startServer(t, Config{
		ModelPath:  path,
		QueueDepth: 512,
		// A generous deadline: the soak asserts on behavior, not latency.
		RequestTimeout: 10 * time.Second,
	})

	var (
		stopFlag  atomic.Bool
		predicts  atomic.Uint64
		decides   atomic.Uint64
		simulates atomic.Uint64
		rejected  atomic.Uint64
		reloadOK  atomic.Uint64
		reloadBad atomic.Uint64
		torn      atomic.Uint64 // predictions matching neither model — must stay 0
		failures  []string
		failMu    sync.Mutex
	)
	fail := func(format string, args ...any) {
		failMu.Lock()
		if len(failures) < 20 {
			failures = append(failures, fmt.Sprintf(format, args...))
		}
		failMu.Unlock()
	}

	client := &http.Client{Timeout: 15 * time.Second}
	post := func(url string, body []byte) (int, []byte) {
		resp, err := client.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			fail("POST %s: %v", url, err)
			return 0, nil
		}
		defer resp.Body.Close()
		data, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, data
	}

	predictBody, _ := json.Marshal(predictRequest{Features: probe[:]})
	decideBody, _ := json.Marshal(decideRequest{Features: probe[:], Mode: "power"})
	simBody, _ := json.Marshal(simulateRequest{Page: "m.cnn.com", Mode: "energy-aware", ReadingS: 15})

	var wg sync.WaitGroup
	// Predict/decide clients: the hot path under sustained concurrency.
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for !stopFlag.Load() {
				code, data := post(base+"/v1/predict", predictBody)
				switch code {
				case http.StatusOK:
					var pr predictResponse
					if err := json.Unmarshal(data, &pr); err != nil {
						fail("predict body %q: %v", data, err)
						continue
					}
					if pr.ReadingSeconds != wantA && pr.ReadingSeconds != wantB {
						torn.Add(1)
						fail("torn prediction %v (want %v or %v) at generation %d",
							pr.ReadingSeconds, wantA, wantB, pr.ModelGeneration)
					}
					predicts.Add(1)
				case http.StatusTooManyRequests:
					rejected.Add(1)
				case 0: // transport error already recorded
				default:
					fail("predict status %d (%s)", code, data)
				}
				if id%2 == 0 {
					if code, _ := post(base+"/v1/decide", decideBody); code == http.StatusOK {
						decides.Add(1)
					}
				}
			}
		}(i)
	}
	// One simulate client: pooled sessions reused for the whole soak.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stopFlag.Load() {
			if code, data := post(base+"/v1/simulate", simBody); code == http.StatusOK {
				simulates.Add(1)
			} else if code != 0 && code != http.StatusTooManyRequests {
				fail("simulate status %d (%s)", code, data)
			}
		}
	}()
	// The reload loop: flip A/B models, with every 5th write a corrupt file
	// that must be rejected without disturbing service.
	wg.Add(1)
	go func() {
		defer wg.Done()
		i := 0
		for !stopFlag.Load() {
			i++
			var expectOK bool
			switch {
			case i%5 == 0:
				_ = os.WriteFile(path, []byte("{corrupt model file"), 0o644)
			case i%2 == 0:
				_ = modelB.SaveFile(path)
				expectOK = true
			default:
				_ = modelA.SaveFile(path)
				expectOK = true
			}
			code, data := post(base+"/admin/reload", nil)
			switch {
			case code == http.StatusOK && expectOK:
				reloadOK.Add(1)
			case code == http.StatusInternalServerError && !expectOK:
				reloadBad.Add(1)
			case code == 0:
			default:
				fail("reload %d (corrupt=%v): status %d (%s)", i, !expectOK, code, data)
			}
			time.Sleep(5 * time.Millisecond)
		}
		// Leave a valid model behind for the quiesced phases below.
		_ = modelA.SaveFile(path)
		if code, data := post(base+"/admin/reload", nil); code != http.StatusOK {
			fail("final reload: status %d (%s)", code, data)
		}
	}()
	// The metrics poller: /metrics stays coherent under full load.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stopFlag.Load() {
			resp, err := client.Get(base + "/metrics")
			if err != nil {
				fail("metrics: %v", err)
				continue
			}
			var m Metrics
			err = json.NewDecoder(resp.Body).Decode(&m)
			resp.Body.Close()
			if err != nil {
				fail("metrics decode: %v", err)
			} else if m.Panics != 0 {
				fail("panic counter %d mid-soak", m.Panics)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}()

	// Warm up, baseline the heap, run the compressed day, measure again.
	warmup := dur / 5
	if warmup > 5*time.Second {
		warmup = 5 * time.Second
	}
	time.Sleep(warmup)
	baseline := heapInUse()
	time.Sleep(dur - warmup)
	stopFlag.Store(true)
	wg.Wait()
	final := heapInUse()

	t.Logf("soak %v: %d predicts (%d torn), %d decides, %d simulates, %d rejected, %d reloads (+%d corrupt rejected), heap %d -> %d bytes",
		dur, predicts.Load(), torn.Load(), decides.Load(), simulates.Load(),
		rejected.Load(), reloadOK.Load(), reloadBad.Load(), baseline, final)

	failMu.Lock()
	for _, f := range failures {
		t.Error(f)
	}
	failMu.Unlock()

	// Enough traffic actually flowed to mean something.
	if predicts.Load() < 100 || decides.Load() == 0 || simulates.Load() == 0 {
		t.Fatalf("soak moved too little traffic: %d/%d/%d", predicts.Load(), decides.Load(), simulates.Load())
	}
	if reloadOK.Load() == 0 || reloadBad.Load() == 0 {
		t.Fatalf("reload loop exercised too little: %d ok, %d corrupt", reloadOK.Load(), reloadBad.Load())
	}
	if torn.Load() != 0 {
		t.Fatalf("%d torn predictions: a request observed a partially swapped model", torn.Load())
	}
	if got := s.panics.Load(); got != 0 {
		t.Fatalf("panic counter %d after soak", got)
	}

	// Flat RSS: the post-soak heap stays within noise of the warm baseline.
	// Allow 50% + 4 MiB of slack for GC timing and pooled buffers.
	limit := baseline + baseline/2 + 4<<20
	if final > limit {
		t.Fatalf("heap grew %d -> %d bytes (limit %d): per-request leak", baseline, final, limit)
	}

	// Quiesced, the predict core still runs allocation-free — the pools and
	// counters have not degraded over the day.
	lm := s.model.current()
	if lm == nil {
		t.Fatal("no model after soak")
	}
	vec := probe
	allocs := testing.AllocsPerRun(1000, func() {
		if _, err := s.predictCore(&vec); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("predict core allocates %.1f/op after soak, want 0", allocs)
	}

	// And the day ends with a clean drain (startServer's cleanup shuts down;
	// do it eagerly here to assert on the error).
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown after soak: %v", err)
	}
}
