package serve

import (
	"encoding/json"
	"net/http"
	"reflect"
	"strings"
	"testing"
)

// TestServeRadioField exercises the radio profile plumbing end to end: the
// field defaults to "umts", echoes back next to the model generation, routes
// simulations onto the right backend pool, and rejects unknown names with the
// valid-name list.
func TestServeRadioField(t *testing.T) {
	s, base := startServer(t, Config{ModelPath: goldenModelPath})

	// Predict echoes the validated profile (default and explicit).
	var pr predictResponse
	if code := postJSON(t, base+"/v1/predict", predictRequest{Features: probeVec[:]}, &pr); code != http.StatusOK {
		t.Fatalf("predict: status %d", code)
	}
	if pr.Radio != "umts" {
		t.Fatalf("default radio echoed %q, want umts", pr.Radio)
	}
	if code := postJSON(t, base+"/v1/predict",
		predictRequest{Features: probeVec[:], Radio: "lte"}, &pr); code != http.StatusOK {
		t.Fatalf("predict lte: status %d", code)
	}
	if pr.Radio != "lte" {
		t.Fatalf("radio echoed %q, want lte", pr.Radio)
	}

	// Simulate runs on the named backend: same page, different radio, a
	// different (and for newer generations lower) energy figure.
	energies := map[string]float64{}
	for _, radio := range []string{"umts", "lte", "nr"} {
		var sr simulateResponse
		req := simulateRequest{Page: "m.cnn.com", Radio: radio, ReadingS: 20}
		if code := postJSON(t, base+"/v1/simulate", req, &sr); code != http.StatusOK {
			t.Fatalf("simulate(%s): status %d", radio, code)
		}
		if sr.Radio != radio {
			t.Fatalf("simulate(%s): echoed radio %q", radio, sr.Radio)
		}
		if sr.EnergyWithReading <= 0 {
			t.Fatalf("simulate(%s): energy %v", radio, sr.EnergyWithReading)
		}
		energies[radio] = sr.EnergyWithReading
	}
	if energies["lte"] >= energies["umts"] || energies["nr"] >= energies["lte"] {
		t.Fatalf("expected newer generations to spend less: %+v", energies)
	}

	// Unknown names answer 400 and name the valid profiles.
	for _, url := range []string{"/v1/predict", "/v1/simulate"} {
		body := `{"features":[1,2,3,4,5,6,7,8,9,10],"radio":"wimax"}`
		if url == "/v1/simulate" {
			body = `{"page":"m.cnn.com","radio":"wimax"}`
		}
		resp, err := http.Post(base+url, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var er errorResponse
		err = json.NewDecoder(resp.Body).Decode(&er)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s with bad radio: status %d", url, resp.StatusCode)
		}
		for _, want := range []string{"unknown radio profile", "lte", "nr", "umts"} {
			if !strings.Contains(er.Error, want) {
				t.Fatalf("%s error %q does not mention %q", url, er.Error, want)
			}
		}
	}

	// The metrics document surfaces the registry.
	m := s.MetricsSnapshot()
	if m.Radio.DefaultProfile != "umts" {
		t.Fatalf("metrics default profile %q, want umts", m.Radio.DefaultProfile)
	}
	if want := []string{"lte", "nr", "umts"}; !reflect.DeepEqual(m.Radio.Profiles, want) {
		t.Fatalf("metrics profiles %v, want %v", m.Radio.Profiles, want)
	}
}
