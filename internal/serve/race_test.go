//go:build race

package serve

// raceEnabled reports the race detector is on: it randomizes sync.Pool
// (deliberately dropping items to expose races), so the steady-state
// zero-allocation gates do not hold and are skipped.
const raceEnabled = true
