package serve

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"eabrowse/internal/channel"
)

// TestServeChannelField exercises the channel scenario plumbing: requests
// without a channel keep the pooled fixed-link behaviour, a degraded
// scenario stretches the simulated transmission, the scenario name echoes
// back, and unknown names answer 400 with the valid-name list.
func TestServeChannelField(t *testing.T) {
	_, base := startServer(t, Config{ModelPath: goldenModelPath})

	// Baseline: the fixed ideal link, pooled.
	var ideal simulateResponse
	req := simulateRequest{Page: "espn.go.com/sports", Mode: "original", ReadingS: 10}
	if code := postJSON(t, base+"/v1/simulate", req, &ideal); code != http.StatusOK {
		t.Fatalf("simulate (ideal): status %d", code)
	}
	if ideal.Channel != "" {
		t.Fatalf("ideal simulate echoed channel %q", ideal.Channel)
	}

	// Fading troughs must slow the same load down.
	req.Channel = "fading"
	var shaped simulateResponse
	if code := postJSON(t, base+"/v1/simulate", req, &shaped); code != http.StatusOK {
		t.Fatalf("simulate (fading): status %d", code)
	}
	if shaped.Channel != "fading" {
		t.Fatalf("shaped simulate echoed channel %q", shaped.Channel)
	}
	if !(shaped.TransmissionS > ideal.TransmissionS) {
		t.Errorf("fading did not stretch transmission: %.3fs vs ideal %.3fs",
			shaped.TransmissionS, ideal.TransmissionS)
	}

	// Channel requests must not contaminate the pool: the next pooled
	// request sees ideal-link numbers again.
	req.Channel = ""
	var again simulateResponse
	if code := postJSON(t, base+"/v1/simulate", req, &again); code != http.StatusOK {
		t.Fatalf("simulate (ideal again): status %d", code)
	}
	if again.TransmissionS != ideal.TransmissionS {
		t.Errorf("pooled session changed after a channel request: %.6fs vs %.6fs",
			again.TransmissionS, ideal.TransmissionS)
	}

	// Unknown scenarios answer 400 and name the valid ones.
	resp, err := http.Post(base+"/v1/simulate", "application/json",
		strings.NewReader(`{"page":"m.cnn.com","channel":"warp-drive"}`))
	if err != nil {
		t.Fatal(err)
	}
	var er errorResponse
	err = json.NewDecoder(resp.Body).Decode(&er)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad channel: status %d", resp.StatusCode)
	}
	for _, want := range channel.Scenarios() {
		if !strings.Contains(er.Error, want) {
			t.Fatalf("error %q does not mention scenario %q", er.Error, want)
		}
	}
}
