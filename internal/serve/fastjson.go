package serve

import (
	"errors"
	"math"
	"strconv"
	"unicode/utf8"

	"eabrowse/internal/features"
)

// The fast JSON layer hand-rolls encoding and decoding for the fixed v1
// request/response schemas so the steady-state request path allocates
// nothing. The contract that keeps it honest:
//
//   - Decoding: the fast parser accepts exactly the canonical shapes —
//     known fields, plain strings, standard numbers. ANY deviation (unknown
//     field, escape sequence, null, syntax error, out-of-range number,
//     trailing data) returns errFallback and the handler re-runs the
//     encoding/json path on the same buffered body, so error statuses and
//     messages are byte-identical to the pre-fast-path service.
//   - Encoding: the appenders reproduce encoding/json's output bytes
//     exactly (float formatting including the e-0X exponent cleanup,
//     HTML-escaped strings, the Encoder's trailing newline); tests pin
//     bit-identity over a golden corpus. Non-finite floats — which
//     encoding/json cannot encode — make the appenders report failure and
//     the handler falls back as well.
var errFallback = errors.New("serve: fast parser fallback")

// --- decoding ---------------------------------------------------------------

type fastParser struct {
	b []byte
	i int
}

func (p *fastParser) ws() {
	for p.i < len(p.b) {
		switch p.b[p.i] {
		case ' ', '\t', '\r', '\n':
			p.i++
		default:
			return
		}
	}
}

func (p *fastParser) eat(c byte) bool {
	if p.i < len(p.b) && p.b[p.i] == c {
		p.i++
		return true
	}
	return false
}

func (p *fastParser) done() bool {
	return p.i >= len(p.b)
}

// simpleString parses a string with no escapes or control characters,
// returning the raw bytes between the quotes.
func (p *fastParser) simpleString() ([]byte, bool) {
	p.ws()
	if !p.eat('"') {
		return nil, false
	}
	start := p.i
	for p.i < len(p.b) {
		c := p.b[p.i]
		if c == '"' {
			s := p.b[start:p.i]
			p.i++
			return s, true
		}
		if c == '\\' || c < 0x20 {
			return nil, false
		}
		p.i++
	}
	return nil, false
}

// key parses `"name":` and returns the raw name bytes.
func (p *fastParser) key() ([]byte, bool) {
	s, ok := p.simpleString()
	if !ok {
		return nil, false
	}
	p.ws()
	if !p.eat(':') {
		return nil, false
	}
	return s, true
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// pow10tab holds the powers of ten exactly representable as float64.
var pow10tab = [...]float64{
	1, 1e1, 1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10, 1e11,
	1e12, 1e13, 1e14, 1e15, 1e16, 1e17, 1e18, 1e19, 1e20, 1e21, 1e22,
}

// number parses one JSON number. Typical values (≤19 significant digits,
// decimal exponent within ±22, mantissa ≤ 2^53) take the exact
// single-rounding fast path — provably identical to strconv.ParseFloat —
// and everything else routes through strconv on the raw bytes. A false
// return means invalid syntax or out-of-range, both of which the caller
// turns into an encoding/json fallback.
func (p *fastParser) number() (float64, bool) {
	start := p.i
	neg := p.eat('-')
	if p.done() {
		return 0, false
	}
	var mant uint64
	digits, exp10 := 0, 0
	huge := false
	switch c := p.b[p.i]; {
	case c == '0':
		p.i++
		digits = 1
		if !p.done() && isDigit(p.b[p.i]) {
			return 0, false // JSON forbids leading zeros
		}
	case c >= '1' && c <= '9':
		for !p.done() && isDigit(p.b[p.i]) {
			if digits < 19 {
				mant = mant*10 + uint64(p.b[p.i]-'0')
				digits++
			} else {
				huge = true
				exp10++
			}
			p.i++
		}
	default:
		return 0, false
	}
	if !p.done() && p.b[p.i] == '.' {
		p.i++
		if p.done() || !isDigit(p.b[p.i]) {
			return 0, false
		}
		for !p.done() && isDigit(p.b[p.i]) {
			if digits < 19 && !huge {
				mant = mant*10 + uint64(p.b[p.i]-'0')
				digits++
				exp10--
			} else {
				huge = true
			}
			p.i++
		}
	}
	if !p.done() && (p.b[p.i] == 'e' || p.b[p.i] == 'E') {
		p.i++
		esign := 1
		if !p.done() && (p.b[p.i] == '+' || p.b[p.i] == '-') {
			if p.b[p.i] == '-' {
				esign = -1
			}
			p.i++
		}
		if p.done() || !isDigit(p.b[p.i]) {
			return 0, false
		}
		e := 0
		for !p.done() && isDigit(p.b[p.i]) {
			if e < 10000 {
				e = e*10 + int(p.b[p.i]-'0')
			}
			p.i++
		}
		exp10 += esign * e
	}
	if !huge && mant <= 1<<53 && exp10 >= -22 && exp10 <= 22 {
		f := float64(mant)
		if exp10 > 0 {
			f *= pow10tab[exp10]
		} else if exp10 < 0 {
			f /= pow10tab[-exp10]
		}
		if neg {
			f = -f
		}
		return f, true
	}
	f, err := strconv.ParseFloat(string(p.b[start:p.i]), 64)
	if err != nil {
		return 0, false
	}
	return f, true
}

// floatArray parses `[f, f, ...]` appending into out.
func (p *fastParser) floatArray(out []float64) ([]float64, bool) {
	p.ws()
	if !p.eat('[') {
		return out, false
	}
	p.ws()
	if p.eat(']') {
		return out, true
	}
	for {
		f, ok := p.number()
		if !ok {
			return out, false
		}
		out = append(out, f)
		p.ws()
		if p.eat(',') {
			p.ws()
			continue
		}
		if p.eat(']') {
			return out, true
		}
		return out, false
	}
}

// matchName resolves raw string bytes against a fixed name set without
// allocating (string(b) == n compiles to an alloc-free comparison). The
// empty string resolves to itself — callers apply their own default.
func matchName(b []byte, names []string) (string, bool) {
	if len(b) == 0 {
		return "", true
	}
	for _, n := range names {
		if string(b) == n {
			return n, true
		}
	}
	return "", false
}

// parseFastPredict parses {"features":[...], "radio":"..."} into feats
// (reused storage) and a canonical radio name from names.
func parseFastPredict(b []byte, feats []float64, names []string) ([]float64, string, error) {
	p := fastParser{b: b}
	radio := ""
	p.ws()
	if !p.eat('{') {
		return feats, "", errFallback
	}
	p.ws()
	if p.eat('}') {
		return p.end(feats, radio)
	}
	for {
		key, ok := p.key()
		if !ok {
			return feats, "", errFallback
		}
		switch {
		case string(key) == "features":
			p.ws()
			if feats, ok = p.floatArray(feats[:0]); !ok {
				return feats, "", errFallback
			}
		case string(key) == "radio":
			rb, sok := p.simpleString()
			if !sok {
				return feats, "", errFallback
			}
			if radio, sok = matchName(rb, names); !sok {
				return feats, "", errFallback
			}
		default:
			return feats, "", errFallback
		}
		p.ws()
		if p.eat(',') {
			p.ws()
			continue
		}
		if p.eat('}') {
			return p.end(feats, radio)
		}
		return feats, "", errFallback
	}
}

// end verifies nothing but whitespace trails the document (the legacy
// decoder 400s on trailing data; the fallback reproduces that).
func (p *fastParser) end(feats []float64, radio string) ([]float64, string, error) {
	p.ws()
	if p.i != len(p.b) {
		return feats, "", errFallback
	}
	return feats, radio, nil
}

// parseFastDecide parses {"features":[...], "mode":"..."} returning the
// canonical mode wire name ("" means default).
func parseFastDecide(b []byte, feats []float64, modes []string) ([]float64, string, error) {
	p := fastParser{b: b}
	mode := ""
	p.ws()
	if !p.eat('{') {
		return feats, "", errFallback
	}
	p.ws()
	if p.eat('}') {
		return p.end(feats, mode)
	}
	for {
		key, ok := p.key()
		if !ok {
			return feats, "", errFallback
		}
		switch {
		case string(key) == "features":
			p.ws()
			if feats, ok = p.floatArray(feats[:0]); !ok {
				return feats, "", errFallback
			}
		case string(key) == "mode":
			mb, sok := p.simpleString()
			if !sok {
				return feats, "", errFallback
			}
			if mode, sok = matchName(mb, modes); !sok {
				return feats, "", errFallback
			}
		default:
			return feats, "", errFallback
		}
		p.ws()
		if p.eat(',') {
			p.ws()
			continue
		}
		if p.eat('}') {
			return p.end(feats, mode)
		}
		return feats, "", errFallback
	}
}

// parseFastBatch parses {"features":[[...],[...],...]} into sc.vecs (rows
// beyond maxBatchRows are syntax-checked but not stored) and sc.rowLens
// (every row's arity, for validation). Returns the row count.
func parseFastBatch(b []byte, sc *scratch) (int, error) {
	p := fastParser{b: b}
	rows := -1 // -1: no features key seen (legacy decodes that to a nil slice)
	p.ws()
	if !p.eat('{') {
		return 0, errFallback
	}
	p.ws()
	if p.eat('}') {
		return p.endBatch(rows)
	}
	for {
		key, ok := p.key()
		if !ok {
			return 0, errFallback
		}
		if string(key) != "features" {
			return 0, errFallback
		}
		sc.rowLens = sc.rowLens[:0]
		rows = 0
		p.ws()
		if !p.eat('[') {
			return 0, errFallback
		}
		p.ws()
		if !p.eat(']') {
			for {
				n, rok := p.row(sc, rows)
				if !rok {
					return 0, errFallback
				}
				sc.rowLens = append(sc.rowLens, n)
				rows++
				p.ws()
				if p.eat(',') {
					p.ws()
					continue
				}
				if p.eat(']') {
					break
				}
				return 0, errFallback
			}
		}
		p.ws()
		if p.eat(',') {
			p.ws()
			continue
		}
		if p.eat('}') {
			return p.endBatch(rows)
		}
		return 0, errFallback
	}
}

func (p *fastParser) endBatch(rows int) (int, error) {
	p.ws()
	if p.i != len(p.b) {
		return 0, errFallback
	}
	if rows < 0 {
		rows = 0
	}
	return rows, nil
}

// row parses one inner feature array into sc.vecs[idx] (when idx is under
// the row cap), returning the row's arity.
func (p *fastParser) row(sc *scratch, idx int) (int, bool) {
	if !p.eat('[') {
		return 0, false
	}
	store := idx < maxBatchRows
	if store {
		for idx >= len(sc.vecs) {
			sc.vecs = append(sc.vecs, features.Vector{})
		}
	}
	n := 0
	p.ws()
	if p.eat(']') {
		return 0, true
	}
	for {
		f, ok := p.number()
		if !ok {
			return 0, false
		}
		if store && n < features.Num {
			sc.vecs[idx][n] = f
		}
		n++
		p.ws()
		if p.eat(',') {
			p.ws()
			continue
		}
		if p.eat(']') {
			return n, true
		}
		return 0, false
	}
}

// --- encoding ---------------------------------------------------------------

// appendJSONFloat appends f exactly as encoding/json encodes a float64
// (shortest representation; 'e' form outside [1e-6, 1e21) with the e-0X
// exponent shortened). Returns false for non-finite values, which
// encoding/json refuses to encode — the caller falls back.
func appendJSONFloat(b []byte, f float64) ([]byte, bool) {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return b, false
	}
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	b = strconv.AppendFloat(b, f, format, -1, 64)
	if format == 'e' {
		if n := len(b); n >= 4 && b[n-4] == 'e' && b[n-3] == '-' && b[n-2] == '0' {
			b[n-2] = b[n-1]
			b = b[:n-1]
		}
	}
	return b, true
}

const hexDigits = "0123456789abcdef"

// appendJSONString appends s as encoding/json's default (HTML-escaping)
// encoder would: ", \ and control characters escaped, plus <, > and & as
// \u00XX, invalid UTF-8 as �, and U+2028/U+2029 as \u202X.
func appendJSONString(b []byte, s string) []byte {
	b = append(b, '"')
	start := 0
	for i := 0; i < len(s); {
		if c := s[i]; c < utf8.RuneSelf {
			if c >= 0x20 && c != '"' && c != '\\' && c != '<' && c != '>' && c != '&' {
				i++
				continue
			}
			b = append(b, s[start:i]...)
			switch c {
			case '\\', '"':
				b = append(b, '\\', c)
			case '\n':
				b = append(b, '\\', 'n')
			case '\r':
				b = append(b, '\\', 'r')
			case '\t':
				b = append(b, '\\', 't')
			default:
				b = append(b, '\\', 'u', '0', '0', hexDigits[c>>4], hexDigits[c&0xF])
			}
			i++
			start = i
			continue
		}
		r, size := utf8.DecodeRuneInString(s[i:])
		if r == utf8.RuneError && size == 1 {
			b = append(b, s[start:i]...)
			b = append(b, '\\', 'u', 'f', 'f', 'f', 'd')
			i += size
			start = i
			continue
		}
		if r == '\u2028' || r == '\u2029' {
			b = append(b, s[start:i]...)
			b = append(b, '\\', 'u', '2', '0', '2', hexDigits[r&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	b = append(b, s[start:]...)
	return append(b, '"')
}

// appendPredictResponse renders predictResponse exactly as
// writeJSON/json.Encoder would, trailing newline included.
func appendPredictResponse(b []byte, seconds float64, gen uint64, radio string) ([]byte, bool) {
	b = append(b, `{"reading_seconds":`...)
	b, ok := appendJSONFloat(b, seconds)
	if !ok {
		return b, false
	}
	b = append(b, `,"model_generation":`...)
	b = strconv.AppendUint(b, gen, 10)
	b = append(b, `,"radio":`...)
	b = appendJSONString(b, radio)
	return append(b, '}', '\n'), true
}

// appendDecideResponse renders decideResponse (field order matches the
// struct, which is what encoding/json emits).
func appendDecideResponse(b []byte, r *decideResponse) ([]byte, bool) {
	b = append(b, `{"reading_seconds":`...)
	b, ok := appendJSONFloat(b, r.ReadingSeconds)
	if !ok {
		return b, false
	}
	b = append(b, `,"switch":`...)
	b = strconv.AppendBool(b, r.Switch)
	b = append(b, `,"reason":`...)
	b = appendJSONString(b, r.Reason)
	b = append(b, `,"mode":`...)
	b = appendJSONString(b, r.Mode)
	b = append(b, `,"tp_s":`...)
	if b, ok = appendJSONFloat(b, r.TpSeconds); !ok {
		return b, false
	}
	b = append(b, `,"td_s":`...)
	if b, ok = appendJSONFloat(b, r.TdSeconds); !ok {
		return b, false
	}
	b = append(b, `,"model_generation":`...)
	b = strconv.AppendUint(b, r.ModelGeneration, 10)
	return append(b, '}', '\n'), true
}

// appendBatchResponse renders batchResponse.
func appendBatchResponse(b []byte, preds []float64, gen uint64) ([]byte, bool) {
	b = append(b, `{"reading_seconds":[`...)
	for i, f := range preds {
		if i > 0 {
			b = append(b, ',')
		}
		var ok bool
		if b, ok = appendJSONFloat(b, f); !ok {
			return b, false
		}
	}
	b = append(b, `],"model_generation":`...)
	b = strconv.AppendUint(b, gen, 10)
	return append(b, '}', '\n'), true
}
