package policy

import (
	"errors"
	"fmt"
	"time"

	"eabrowse/internal/browser"
	"eabrowse/internal/features"
	"eabrowse/internal/gbrt"
	"eabrowse/internal/netsim"
	"eabrowse/internal/predictor"
	"eabrowse/internal/rrc"
	"eabrowse/internal/runner"
	"eabrowse/internal/simtime"
	"eabrowse/internal/trace"
)

// Case is one of the Section 5.6.2 / Table 6 strategies for deciding when
// the smartphone switches to IDLE.
type Case int

const (
	// CaseOriginal is the unmodified browser and stock timers (baseline).
	CaseOriginal Case = iota + 1
	// CaseOrigAlwaysOff: original browser, forced IDLE right after every
	// page opens.
	CaseOrigAlwaysOff
	// CaseEAAlwaysOff: energy-aware browser, forced IDLE right after every
	// page opens.
	CaseEAAlwaysOff
	// CaseAccurate9: energy-aware browser; IDLE if the *actual* trace
	// reading time exceeds Tp = 9 s (oracle upper bound, power-driven).
	CaseAccurate9
	// CasePredict9: energy-aware browser; IDLE if the *predicted* reading
	// time exceeds Tp = 9 s.
	CasePredict9
	// CaseAccurate20: oracle at Td = 20 s (delay-driven).
	CaseAccurate20
	// CasePredict20: prediction at Td = 20 s.
	CasePredict20
)

// String names the case as in Table 6.
func (c Case) String() string {
	switch c {
	case CaseOriginal:
		return "Original"
	case CaseOrigAlwaysOff:
		return "Original Always-off"
	case CaseEAAlwaysOff:
		return "Energy-Aware Always-off"
	case CaseAccurate9:
		return "Accurate-9"
	case CasePredict9:
		return "Predict-9"
	case CaseAccurate20:
		return "Accurate-20"
	case CasePredict20:
		return "Predict-20"
	default:
		return fmt.Sprintf("Case(%d)", int(c))
	}
}

// AllCases lists the six evaluated strategies (the baseline is implicit).
var AllCases = []Case{
	CaseOrigAlwaysOff, CaseEAAlwaysOff,
	CaseAccurate9, CasePredict9,
	CaseAccurate20, CasePredict20,
}

// CaseResult is one bar pair of Fig. 16.
type CaseResult struct {
	Case Case
	// EnergyJ is total browsing energy over the whole trace.
	EnergyJ float64
	// DelayS is total page-loading delay (including promotion penalties
	// inherited from a too-eager release).
	DelayS float64
	// PowerSavingPct and DelaySavingPct are relative to CaseOriginal.
	PowerSavingPct float64
	DelaySavingPct float64
	// Switches counts forced releases; Predictions counts GBRT evaluations.
	Switches    int
	Predictions int
}

// pageCost caches one pool page's load behaviour under both pipelines.
type pageCost struct {
	origLoadS   float64
	origEnergyJ float64
	origTailS   float64 // page-open time minus last-transfer time
	eaLoadS     float64
	eaEnergyJ   float64
	eaTailS     float64
}

// Evaluator replays a browsing trace under each case.
type Evaluator struct {
	ds     *trace.Dataset
	pred   *predictor.Predictor
	spec   rrc.ModelSpec
	tail   rrc.TailProfile
	params Params
	costs  map[string]pageCost
	device gbrt.DeviceCost
}

// NewEvaluator prepares the case replays on the paper's UMTS radio. It is
// NewEvaluatorWithRadio with rrc.DefaultConfig().
func NewEvaluator(ds *trace.Dataset, pred *predictor.Predictor, params Params) (*Evaluator, error) {
	return NewEvaluatorWithRadio(ds, pred, params, rrc.DefaultConfig())
}

// NewEvaluatorWithRadio loads every pool page once through each pipeline on
// the given radio backend (the energy-aware pipeline without automatic
// dormancy: in the policy setting the release decision belongs to
// Algorithm 2, not the engine) and prepares the case replays.
func NewEvaluatorWithRadio(ds *trace.Dataset, pred *predictor.Predictor, params Params, spec rrc.ModelSpec) (*Evaluator, error) {
	if ds == nil || len(ds.Visits) == 0 {
		return nil, errors.New("policy: empty dataset")
	}
	if pred == nil {
		return nil, errors.New("policy: nil predictor")
	}
	if spec == nil {
		return nil, errors.New("policy: nil radio spec")
	}
	ev := &Evaluator{
		ds:     ds,
		pred:   pred,
		spec:   spec,
		tail:   spec.Tail(),
		params: params,
		costs:  make(map[string]pageCost, len(ds.Pool)),
		device: gbrt.DefaultDeviceCost(),
	}
	// Each pool page loads on two fresh simulated phones — independent work,
	// run on the worker pool and folded into the cost map in pool order.
	costs, err := runner.Collect(len(ds.Pool), func(i int) (pageCost, error) {
		pp := &ds.Pool[i]
		if pp.Page == nil {
			return pageCost{}, fmt.Errorf("policy: pool page %s has no page body", pp.Name)
		}
		var cost pageCost
		origRes, err := loadOnce(pp, browser.ModeOriginal, spec)
		if err != nil {
			return pageCost{}, fmt.Errorf("load %s original: %w", pp.Name, err)
		}
		cost.origLoadS = origRes.FinalDisplayAt.Seconds()
		cost.origEnergyJ = origRes.TotalEnergyJ()
		cost.origTailS = origRes.LayoutTime().Seconds()
		eaRes, err := loadOnce(pp, browser.ModeEnergyAware, spec)
		if err != nil {
			return pageCost{}, fmt.Errorf("load %s energy-aware: %w", pp.Name, err)
		}
		cost.eaLoadS = eaRes.FinalDisplayAt.Seconds()
		cost.eaEnergyJ = eaRes.TotalEnergyJ()
		cost.eaTailS = eaRes.LayoutTime().Seconds()
		return cost, nil
	})
	if err != nil {
		return nil, err
	}
	for i := range ds.Pool {
		ev.costs[ds.Pool[i].Name] = costs[i]
	}
	return ev, nil
}

func loadOnce(pp *trace.PoolPage, mode browser.Mode, spec rrc.ModelSpec) (*browser.Result, error) {
	clock := simtime.NewClock()
	radio, err := spec.New(clock)
	if err != nil {
		return nil, err
	}
	link, err := netsim.NewLink(clock, radio, netsim.DefaultConfig())
	if err != nil {
		return nil, err
	}
	var opts []browser.Option
	if mode == browser.ModeEnergyAware {
		opts = append(opts, browser.WithoutAutoDormancy())
	}
	engine, err := browser.NewEngine(clock, radio, link, browser.DefaultCostModel(), mode, opts...)
	if err != nil {
		return nil, err
	}
	var result *browser.Result
	if err := engine.Load(pp.Page, func(r *browser.Result) { result = r }); err != nil {
		return nil, err
	}
	for result == nil {
		if !clock.Step() {
			return nil, errors.New("policy: load stalled")
		}
		if clock.Now() > 30*time.Minute {
			return nil, errors.New("policy: load timed out")
		}
	}
	return result, nil
}

// EvaluateAll replays the trace under the baseline and all six cases.
func (ev *Evaluator) EvaluateAll() ([]CaseResult, error) {
	base, err := ev.replay(CaseOriginal)
	if err != nil {
		return nil, err
	}
	results := make([]CaseResult, 0, len(AllCases)+1)
	results = append(results, base)
	for _, c := range AllCases {
		r, err := ev.replay(c)
		if err != nil {
			return nil, err
		}
		r.PowerSavingPct = (base.EnergyJ - r.EnergyJ) / base.EnergyJ * 100
		r.DelaySavingPct = (base.DelayS - r.DelayS) / base.DelayS * 100
		results = append(results, r)
	}
	return results, nil
}

// Evaluate replays a single case (saving percentages left zero; use
// EvaluateAll for the comparison).
func (ev *Evaluator) Evaluate(c Case) (CaseResult, error) {
	return ev.replay(c)
}

// replay walks every user's visit sequence: per visit it charges the load
// (adjusted for the radio state inherited from the previous visit), decides
// whether the case releases the radio, and charges the reading window.
//
// For the prediction-driven cases every visit that survives the interest
// threshold gets its reading time predicted; those forest walks are batched
// up front (tree-major, cache-friendly) and consumed in visit order, which
// leaves the replay — energy accumulation order included — unchanged.
func (ev *Evaluator) replay(c Case) (CaseResult, error) {
	tp := &ev.tail
	alpha := ev.params.Alpha.Seconds()
	res := CaseResult{Case: c}

	var preds []float64
	if c == CasePredict9 || c == CasePredict20 {
		var vecs []features.Vector
		for _, v := range ev.ds.Visits {
			if v.ReadingSeconds >= alpha {
				vecs = append(vecs, v.Features)
			}
		}
		preds = make([]float64, len(vecs))
		if err := ev.pred.PredictBatchSeconds(vecs, preds); err != nil {
			return CaseResult{}, err
		}
	}

	prevUser := -1
	prevSession := -1
	stage := tp.TerminalIndex()
	for _, v := range ev.ds.Visits {
		cost, ok := ev.costs[v.Page]
		if !ok {
			return CaseResult{}, fmt.Errorf("policy: no cost for page %s", v.Page)
		}
		if v.User != prevUser || v.Session != prevSession {
			// Session boundaries are minutes apart: the radio has idled out.
			stage = tp.TerminalIndex()
			prevUser, prevSession = v.User, v.Session
		}

		loadS, loadJ, tailS := cost.eaLoadS, cost.eaEnergyJ, cost.eaTailS
		if c == CaseOriginal || c == CaseOrigAlwaysOff {
			loadS, loadJ, tailS = cost.origLoadS, cost.origEnergyJ, cost.origTailS
		}
		dt, dj := promoAdjustStage(tp, stage)
		res.DelayS += loadS + dt
		res.EnergyJ += loadJ + dj

		// Decide the release, per Table 6.
		reading := v.ReadingSeconds
		switchAt := -1.0 // no release
		switch c {
		case CaseOriginal:
			// Timers only.
		case CaseOrigAlwaysOff, CaseEAAlwaysOff:
			switchAt = 0
		case CaseAccurate9:
			if reading > 9 {
				switchAt = alpha
			}
		case CaseAccurate20:
			if reading > 20 {
				switchAt = alpha
			}
		case CasePredict9, CasePredict20:
			if reading >= alpha {
				pred := preds[res.Predictions]
				res.Predictions++
				res.EnergyJ += ev.device.PredictionEnergyJ(ev.pred.NumTrees())
				threshold := 9.0
				if c == CasePredict20 {
					threshold = 20
				}
				if pred > threshold {
					switchAt = alpha
				}
			}
		}

		if switchAt >= 0 && switchAt < reading {
			res.EnergyJ += switchedWindowEnergy(tp, tailS, reading, switchAt)
			res.Switches++
			stage = tp.TerminalIndex()
		} else {
			res.EnergyJ += tailEnergy(tp, tailS, reading)
			stage = stageAfter(tp, tailS+reading)
		}
	}
	return res, nil
}
