package policy

import (
	"testing"

	"eabrowse/internal/gbrt"
	"eabrowse/internal/predictor"
	"eabrowse/internal/trace"
)

// buildEvaluator synthesizes the trace, trains the predictor and prepares
// the six-case evaluator once for the package.
var (
	sharedResults []CaseResult
)

func caseResults(t *testing.T) []CaseResult {
	t.Helper()
	if sharedResults != nil {
		return sharedResults
	}
	cfg := trace.DefaultConfig()
	ds, err := trace.Synthesize(cfg)
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	train, _, err := predictor.Split(ds.Visits, 0.3, 7)
	if err != nil {
		t.Fatalf("Split: %v", err)
	}
	pcfg := predictor.DefaultConfig()
	pcfg.GBRT = gbrt.Config{Trees: 120, MaxLeaves: 8, Shrinkage: 0.1, MinSamplesLeaf: 5}
	pred, err := predictor.Train(train, pcfg)
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	ev, err := NewEvaluator(ds, pred, DefaultParams())
	if err != nil {
		t.Fatalf("NewEvaluator: %v", err)
	}
	results, err := ev.EvaluateAll()
	if err != nil {
		t.Fatalf("EvaluateAll: %v", err)
	}
	sharedResults = results
	return results
}

func byCase(t *testing.T, results []CaseResult, c Case) CaseResult {
	t.Helper()
	for _, r := range results {
		if r.Case == c {
			return r
		}
	}
	t.Fatalf("case %v missing from results", c)
	return CaseResult{}
}

func TestEvaluatorValidation(t *testing.T) {
	if _, err := NewEvaluator(nil, nil, DefaultParams()); err == nil {
		t.Fatal("nil dataset accepted")
	}
	if _, err := NewEvaluator(&trace.Dataset{}, nil, DefaultParams()); err == nil {
		t.Fatal("empty dataset accepted")
	}
}

// TestFig16Shape asserts the orderings the paper reports in Section 5.6.2:
//
//   - Original Always-off saves the least power and *costs* delay;
//   - Energy-Aware Always-off saves the least delay among the EA cases
//     (paper: 9.2%);
//   - Accurate-9 saves the most power; Accurate-20 the most delay;
//   - each Predict case performs slightly below its Accurate oracle.
func TestFig16Shape(t *testing.T) {
	results := caseResults(t)
	if len(results) != 7 {
		t.Fatalf("got %d cases, want 7 (baseline + 6)", len(results))
	}
	base := byCase(t, results, CaseOriginal)
	if base.PowerSavingPct != 0 || base.DelaySavingPct != 0 {
		t.Fatalf("baseline has nonzero savings: %+v", base)
	}

	origOff := byCase(t, results, CaseOrigAlwaysOff)
	eaOff := byCase(t, results, CaseEAAlwaysOff)
	acc9 := byCase(t, results, CaseAccurate9)
	pre9 := byCase(t, results, CasePredict9)
	acc20 := byCase(t, results, CaseAccurate20)
	pre20 := byCase(t, results, CasePredict20)

	if origOff.DelaySavingPct >= 0 {
		t.Errorf("Original Always-off delay saving = %.2f%%, want negative (paper: -1.47%%)", origOff.DelaySavingPct)
	}
	for _, r := range []CaseResult{eaOff, acc9, pre9, acc20, pre20} {
		if origOff.PowerSavingPct >= r.PowerSavingPct {
			t.Errorf("Original Always-off (%.2f%%) should save the least power, but beats %v (%.2f%%)",
				origOff.PowerSavingPct, r.Case, r.PowerSavingPct)
		}
	}
	for _, r := range []CaseResult{acc9, pre9, acc20, pre20} {
		if eaOff.DelaySavingPct > r.DelaySavingPct {
			t.Errorf("EA Always-off (%.2f%%) should save the least delay among EA cases, but beats %v (%.2f%%)",
				eaOff.DelaySavingPct, r.Case, r.DelaySavingPct)
		}
	}
	// EA Always-off delay saving near the paper's 9.2%.
	if eaOff.DelaySavingPct < 5 || eaOff.DelaySavingPct > 15 {
		t.Errorf("EA Always-off delay saving = %.2f%%, want ≈9.2%%", eaOff.DelaySavingPct)
	}
	// Accurate-9 best power.
	for _, r := range []CaseResult{origOff, eaOff, pre9, acc20, pre20} {
		if acc9.PowerSavingPct < r.PowerSavingPct {
			t.Errorf("Accurate-9 (%.2f%%) should save the most power, beaten by %v (%.2f%%)",
				acc9.PowerSavingPct, r.Case, r.PowerSavingPct)
		}
	}
	// Accurate-20 best delay.
	for _, r := range []CaseResult{origOff, eaOff, acc9, pre9, pre20} {
		if acc20.DelaySavingPct < r.DelaySavingPct {
			t.Errorf("Accurate-20 (%.2f%%) should save the most delay, beaten by %v (%.2f%%)",
				acc20.DelaySavingPct, r.Case, r.DelaySavingPct)
		}
	}
	// Predictions track but do not beat their oracles on the target metric.
	if pre9.PowerSavingPct > acc9.PowerSavingPct {
		t.Errorf("Predict-9 power (%.2f%%) beats its oracle (%.2f%%)", pre9.PowerSavingPct, acc9.PowerSavingPct)
	}
	if pre20.DelaySavingPct > acc20.DelaySavingPct {
		t.Errorf("Predict-20 delay (%.2f%%) beats its oracle (%.2f%%)", pre20.DelaySavingPct, acc20.DelaySavingPct)
	}
}

func TestPredictCasesCountPredictions(t *testing.T) {
	results := caseResults(t)
	for _, c := range []Case{CasePredict9, CasePredict20} {
		r := byCase(t, results, c)
		if r.Predictions == 0 {
			t.Errorf("%v made no predictions", c)
		}
	}
	for _, c := range []Case{CaseOriginal, CaseOrigAlwaysOff, CaseEAAlwaysOff, CaseAccurate9, CaseAccurate20} {
		r := byCase(t, results, c)
		if r.Predictions != 0 {
			t.Errorf("%v made %d predictions, want none", c, r.Predictions)
		}
	}
}

func TestSwitchCounts(t *testing.T) {
	results := caseResults(t)
	eaOff := byCase(t, results, CaseEAAlwaysOff)
	acc9 := byCase(t, results, CaseAccurate9)
	acc20 := byCase(t, results, CaseAccurate20)
	if eaOff.Switches <= acc9.Switches {
		t.Errorf("always-off switches (%d) not above Accurate-9 (%d)", eaOff.Switches, acc9.Switches)
	}
	if acc9.Switches <= acc20.Switches {
		t.Errorf("Accurate-9 switches (%d) not above Accurate-20 (%d); 9s threshold fires more often",
			acc9.Switches, acc20.Switches)
	}
}
