package policy

import (
	"errors"
	"fmt"
	"time"

	"eabrowse/internal/rrc"
)

// The paper's Td/Tp thresholds are constants tuned for one fixed 3G link;
// under time-varying channels and non-UMTS tails the energy crossover moves.
// Adaptive replaces the constant with a per-user recursive estimate of the
// break-even reading time
//
//	T̂ = reconnect-cost Ĵ / excess-hold-power Ŵ
//
// where Ĵ is the running (EWMA) estimate of what a release costs (the
// fast-dormancy overhead plus the extra promotion energy the next load pays
// for starting cold) and Ŵ is the running estimate of the tail power wasted
// above the idle floor while holding. Both start from the radio profile's
// closed-form priors — for the paper's UMTS tail the prior T̂ lands near the
// Fig. 3 crossover that motivated Tp — and are updated from observed window
// outcomes, so users whose channels or habits shift see their threshold
// follow. The estimator is plain sequential arithmetic: replays that feed it
// identical observations in identical order stay byte-identical.

// AdaptiveConfig tunes the recursive threshold estimator.
type AdaptiveConfig struct {
	// Gain is the EWMA weight of each new observation, in (0, 1].
	Gain float64
	// Floor and Ceil clamp the learned threshold. Floor guards against a
	// burst of cheap-release observations collapsing the threshold below
	// the interest window; Ceil (typically Td) keeps the estimator from
	// drifting into never-release territory.
	Floor, Ceil time.Duration
}

// DefaultAdaptiveConfig clamps the threshold to [Alpha, 30·Td] with gain
// 0.25. The ceiling is deliberately far above Td: on radios with short
// native tails (5G NR) the true break-even sits beyond the paper's
// delay-driven threshold, and the estimator must be free to learn
// "holding is cheaper here" instead of being forced down to Td.
func DefaultAdaptiveConfig(p Params) AdaptiveConfig {
	return AdaptiveConfig{Gain: 0.25, Floor: p.Alpha, Ceil: 30 * p.Td}
}

// Validate checks the estimator configuration.
func (c AdaptiveConfig) Validate() error {
	switch {
	case c.Gain <= 0 || c.Gain > 1:
		return fmt.Errorf("policy: adaptive gain %g out of (0, 1]", c.Gain)
	case c.Floor <= 0 || c.Ceil < c.Floor:
		return fmt.Errorf("policy: adaptive clamp [%v, %v] invalid", c.Floor, c.Ceil)
	}
	return nil
}

// Adaptive is one user's recursive threshold estimator. Not safe for
// concurrent use — it belongs to a single simulated phone, like the radio.
type Adaptive struct {
	cfg  AdaptiveConfig
	tail rrc.TailProfile

	excessW    float64 // Ŵ: EWMA excess hold power above idle, J/s
	reconnectJ float64 // Ĵ: EWMA release cost, J
	holds      int
	releases   int
}

// minExcessW keeps the threshold ratio finite when a run of very long held
// windows dilutes the excess-power estimate toward zero.
const minExcessW = 1e-6

// NewAdaptive builds an estimator for the given radio tail, seeded with the
// profile's closed-form priors.
func NewAdaptive(cfg AdaptiveConfig, tail rrc.TailProfile) (*Adaptive, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if tail.Active.Dwell <= 0 {
		return nil, errors.New("policy: adaptive needs a radio tail profile")
	}
	a := &Adaptive{cfg: cfg, tail: tail}
	tp := &a.tail
	idleW := tp.Terminal().PowerW
	// Prior Ŵ: the full tail's average power above idle.
	dwellS := tp.TotalDwell().Seconds()
	a.excessW = (tailEnergy(tp, 0, dwellS) - idleW*dwellS) / dwellS
	if a.excessW < minExcessW {
		a.excessW = minExcessW
	}
	// Prior Ĵ: the dormancy release above the idle floor, plus the cold
	// promotion the next load pays relative to the warmest held state.
	relS := tp.ReleaseDelay.Seconds()
	a.reconnectJ = releaseEnergy(tp) - idleW*relS + coldPromoExtraJ(tp, 0)
	return a, nil
}

// coldPromoExtraJ is the extra promotion energy a load starting from the
// terminal stage pays compared to one starting from heldStage (≥ 0; zero
// when the held radio would have idled out anyway).
func coldPromoExtraJ(tp *rrc.TailProfile, heldStage int) float64 {
	_, dj := promoAdjustStage(tp, heldStage)
	return -dj
}

// Threshold returns the current learned release threshold T̂, clamped.
func (a *Adaptive) Threshold() time.Duration {
	t := time.Duration(a.reconnectJ / a.excessW * float64(time.Second))
	if t < a.cfg.Floor {
		return a.cfg.Floor
	}
	if t > a.cfg.Ceil {
		return a.cfg.Ceil
	}
	return t
}

// Decide applies the adaptive rule to a predicted reading time.
func (a *Adaptive) Decide(predictedReading time.Duration) Decision {
	d := Decision{Predicted: predictedReading}
	if predictedReading > a.Threshold() {
		d.Switch = true
		d.Reason = "beyond-adaptive"
	} else {
		d.Reason = "keep"
	}
	return d
}

// Observations returns how many held and released windows have been fed in.
func (a *Adaptive) Observations() (holds, releases int) {
	return a.holds, a.releases
}

// ObserveHold feeds the outcome of a window where the radio was left to its
// timers: windowJ joules of radio energy over windowS seconds.
func (a *Adaptive) ObserveHold(windowJ, windowS float64) {
	if windowS <= 0 {
		return
	}
	excess := windowJ/windowS - a.tail.Terminal().PowerW
	if excess < minExcessW {
		excess = minExcessW
	}
	a.excessW += a.cfg.Gain * (excess - a.excessW)
	a.holds++
}

// ObserveRelease feeds the outcome of a window where the radio was released:
// windowJ joules over windowS seconds, with heldStage the tail stage the
// radio would have reached had it been left to its timers (it prices the
// promotion energy the release shifted onto the next load).
func (a *Adaptive) ObserveRelease(windowJ, windowS float64, heldStage int) {
	if windowS <= 0 {
		return
	}
	tp := &a.tail
	cost := windowJ - tp.Terminal().PowerW*windowS + coldPromoExtraJ(tp, heldStage)
	if cost < 0 {
		cost = 0
	}
	a.reconnectJ += a.cfg.Gain * (cost - a.reconnectJ)
	a.releases++
}
