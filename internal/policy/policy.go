// Package policy implements Algorithm 2 of the paper — the energy-aware
// state-switch decision — and the six-case trace-driven comparison of
// Section 5.6.2 (Fig. 16, Table 6).
//
// After a page is opened the phone waits for the interest threshold α; if
// the user is still reading, the GBRT predictor estimates the remaining
// reading time Tr and the radio is forced to IDLE when
//
//	Tr > Td  (always), or
//	Tr > Tp  (in power-driven mode),
//
// where Td = T1+T2 ≈ 20 s is the no-delay-penalty bound and Tp = 9 s is the
// Fig. 3 energy-crossover bound (Table 2).
package policy

import (
	"time"
)

// Mode selects what Algorithm 2 optimizes (Table 2).
type Mode int

const (
	// ModeDelay only releases the radio when no delay penalty is possible
	// (predicted reading beyond Td).
	ModeDelay Mode = iota + 1
	// ModePower also releases when the release merely saves energy
	// (predicted reading beyond Tp), accepting possible promotion delay.
	ModePower
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeDelay:
		return "delay-driven"
	case ModePower:
		return "power-driven"
	default:
		return "unknown-mode"
	}
}

// Params are Algorithm 2's inputs (Table 2).
type Params struct {
	// Alpha is the interest threshold: prediction runs only after the user
	// has kept the page open this long.
	Alpha time.Duration
	// Td is the delay-driven threshold (T1 + T2).
	Td time.Duration
	// Tp is the power-driven threshold (the Fig. 3 crossover).
	Tp time.Duration
	// Mode selects power- vs. delay-driven operation.
	Mode Mode
}

// DefaultParams returns the paper's parameters in delay-driven mode.
func DefaultParams() Params {
	return Params{
		Alpha: 2 * time.Second,
		Td:    20 * time.Second,
		Tp:    9 * time.Second,
		Mode:  ModeDelay,
	}
}

// Decision is one evaluation of Algorithm 2's decision rule, with the
// reason attached so decisions are explainable in traces.
type Decision struct {
	// Predicted is the GBRT-predicted remaining reading time.
	Predicted time.Duration
	// Switch is the verdict: force the radio to IDLE now.
	Switch bool
	// Reason names the rule that fired: "beyond-Td", "beyond-Tp", or
	// "keep" (no threshold cleared).
	Reason string
}

// Evaluate runs Algorithm 2's decision rule on a predicted reading time.
func Evaluate(predictedReading time.Duration, p Params) Decision {
	d := Decision{Predicted: predictedReading}
	switch {
	case predictedReading > p.Td:
		d.Switch = true
		d.Reason = "beyond-Td"
	case p.Mode == ModePower && predictedReading > p.Tp:
		d.Switch = true
		d.Reason = "beyond-Tp"
	default:
		d.Reason = "keep"
	}
	return d
}

// ShouldSwitchToIdle is the decision rule of Algorithm 2: given the
// predicted reading time, should the radio be forced to IDLE?
func ShouldSwitchToIdle(predictedReading time.Duration, p Params) bool {
	return Evaluate(predictedReading, p).Switch
}
