package policy

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"eabrowse/internal/browser"
	"eabrowse/internal/channel"
	"eabrowse/internal/features"
	"eabrowse/internal/gbrt"
	"eabrowse/internal/netsim"
	"eabrowse/internal/predictor"
	"eabrowse/internal/rrc"
	"eabrowse/internal/runner"
	"eabrowse/internal/simtime"
	"eabrowse/internal/trace"
)

// The scenario evaluator replays a browsing trace under a time-varying
// channel three ways: the paper's static thresholds, the per-user Adaptive
// estimator, and a greedy counterfactual oracle. Like the six-case Evaluator
// it is closed-form: every pool page is loaded once per channel segment
// (under that segment's conditions held constant), and the replay walks the
// visit stream charging cached load costs plus analytic tail arithmetic.
// Each user carries a channel clock that starts at the schedule origin and
// advances through loads, reading windows and session gaps, so consecutive
// visits land on the segments a live phone would see.
//
// The oracle is a true per-visit lower bound over the shared action space
// {hold, release at α}: a page load always drives the radio back to the
// active state, so a window decision's full consequence is its own window
// energy plus the next load's promotion delta — greedy minimization of that
// sum is globally optimal, and the oracle pays no prediction energy.

// ScenarioPolicy selects a release policy for the scenario replay.
type ScenarioPolicy int

const (
	// PolicyStatic is Algorithm 2 with the paper's fixed thresholds.
	PolicyStatic ScenarioPolicy = iota + 1
	// PolicyAdaptive is the per-user recursive threshold estimator.
	PolicyAdaptive
	// PolicyOracle is the greedy counterfactual lower bound.
	PolicyOracle
)

// String names the policy.
func (p ScenarioPolicy) String() string {
	switch p {
	case PolicyStatic:
		return "static"
	case PolicyAdaptive:
		return "adaptive"
	case PolicyOracle:
		return "oracle"
	default:
		return fmt.Sprintf("ScenarioPolicy(%d)", int(p))
	}
}

// ScenarioPolicies lists the replay policies in evaluation order.
var ScenarioPolicies = []ScenarioPolicy{PolicyStatic, PolicyAdaptive, PolicyOracle}

// ScenarioPolicyNames returns the valid policy names, in evaluation order.
func ScenarioPolicyNames() []string {
	names := make([]string, len(ScenarioPolicies))
	for i, p := range ScenarioPolicies {
		names[i] = p.String()
	}
	return names
}

// ScenarioPolicyByName resolves a policy name; unknown names fail with the
// valid-name list.
func ScenarioPolicyByName(name string) (ScenarioPolicy, error) {
	for _, p := range ScenarioPolicies {
		if p.String() == name {
			return p, nil
		}
	}
	return 0, fmt.Errorf("policy: unknown scenario policy %q (have: %s)",
		name, strings.Join(ScenarioPolicyNames(), ", "))
}

// ScenarioSessionGap is the channel time charged between sessions of one
// user: long enough for any radio tail to idle out, and deliberately not a
// multiple of the built-in scenario cycles so successive sessions start at
// varied channel phases.
const ScenarioSessionGap = 247 * time.Second

// ScenarioResult is one cell of the scenario×policy matrix.
type ScenarioResult struct {
	Scenario string
	Policy   ScenarioPolicy
	// EnergyJ is total browsing energy over the whole trace; DelayS is the
	// total page-load delay including promotion penalties.
	EnergyJ float64
	DelayS  float64
	// Switches counts forced releases; Predictions counts GBRT evaluations
	// (zero for the oracle).
	Switches    int
	Predictions int
}

// segCost caches one pool page's energy-aware load under one channel
// segment's conditions.
type segCost struct {
	loadS   float64
	energyJ float64
	tailS   float64
}

// ScenarioEvaluator replays a trace under one channel schedule.
type ScenarioEvaluator struct {
	ds     *trace.Dataset
	pred   *predictor.Predictor
	tail   rrc.TailProfile
	params Params
	acfg   AdaptiveConfig
	sched  *channel.Schedule
	// costs[p*numSegments+s] is pool page p loaded under segment s.
	costs  []segCost
	pool   map[string]int
	device gbrt.DeviceCost
}

// NewScenarioEvaluator loads every pool page once per channel segment of the
// schedule (energy-aware pipeline, automatic dormancy off — the release
// decision belongs to the policy under test) on the given radio backend.
func NewScenarioEvaluator(ds *trace.Dataset, pred *predictor.Predictor, params Params,
	spec rrc.ModelSpec, sched *channel.Schedule) (*ScenarioEvaluator, error) {
	if ds == nil || len(ds.Visits) == 0 {
		return nil, errors.New("policy: empty dataset")
	}
	if pred == nil {
		return nil, errors.New("policy: nil predictor")
	}
	if spec == nil {
		return nil, errors.New("policy: nil radio spec")
	}
	if sched == nil {
		return nil, errors.New("policy: nil channel schedule")
	}
	ev := &ScenarioEvaluator{
		ds:     ds,
		pred:   pred,
		tail:   spec.Tail(),
		params: params,
		acfg:   DefaultAdaptiveConfig(params),
		sched:  sched,
		device: gbrt.DefaultDeviceCost(),
	}
	nseg := sched.NumSegments()
	costs, err := runner.Collect(len(ds.Pool)*nseg, func(i int) (segCost, error) {
		pp := &ds.Pool[i/nseg]
		if pp.Page == nil {
			return segCost{}, fmt.Errorf("policy: pool page %s has no page body", pp.Name)
		}
		cond, err := channel.Constant(sched.Name(), sched.Segment(i%nseg).Cond)
		if err != nil {
			return segCost{}, err
		}
		res, err := loadOnceChannel(pp, spec, cond)
		if err != nil {
			return segCost{}, fmt.Errorf("load %s under %s segment %d: %w",
				pp.Name, sched.Name(), i%nseg, err)
		}
		return segCost{
			loadS:   res.FinalDisplayAt.Seconds(),
			energyJ: res.TotalEnergyJ(),
			tailS:   res.LayoutTime().Seconds(),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	ev.costs = costs
	ev.pool = make(map[string]int, len(ds.Pool))
	for i := range ds.Pool {
		ev.pool[ds.Pool[i].Name] = i
	}
	return ev, nil
}

// loadOnceChannel is loadOnce for the energy-aware pipeline with a channel
// schedule attached to the link.
func loadOnceChannel(pp *trace.PoolPage, spec rrc.ModelSpec, sched *channel.Schedule) (*browser.Result, error) {
	clock := simtime.NewClock()
	radio, err := spec.New(clock)
	if err != nil {
		return nil, err
	}
	link, err := netsim.NewLink(clock, radio, netsim.DefaultConfig())
	if err != nil {
		return nil, err
	}
	link.SetChannel(sched)
	engine, err := browser.NewEngine(clock, radio, link, browser.DefaultCostModel(),
		browser.ModeEnergyAware, browser.WithoutAutoDormancy())
	if err != nil {
		return nil, err
	}
	var result *browser.Result
	if err := engine.Load(pp.Page, func(r *browser.Result) { result = r }); err != nil {
		return nil, err
	}
	for result == nil {
		if !clock.Step() {
			return nil, errors.New("policy: load stalled")
		}
		if clock.Now() > 30*time.Minute {
			return nil, errors.New("policy: load timed out")
		}
	}
	return result, nil
}

// EvaluateAll replays the trace under every scenario policy.
func (ev *ScenarioEvaluator) EvaluateAll() ([]ScenarioResult, error) {
	results := make([]ScenarioResult, 0, len(ScenarioPolicies))
	for _, p := range ScenarioPolicies {
		r, err := ev.Evaluate(p)
		if err != nil {
			return nil, err
		}
		results = append(results, r)
	}
	return results, nil
}

// Evaluate replays the trace under one policy. The replay is strictly
// sequential in visit order (predictions are batched up front and consumed
// in order), so results are byte-identical at any worker count.
func (ev *ScenarioEvaluator) Evaluate(p ScenarioPolicy) (ScenarioResult, error) {
	tp := &ev.tail
	alpha := ev.params.Alpha.Seconds()
	nseg := ev.sched.NumSegments()
	res := ScenarioResult{Scenario: ev.sched.Name(), Policy: p}

	// Batch the forest walks for the prediction-driven policies.
	var preds []float64
	if p == PolicyStatic || p == PolicyAdaptive {
		var vecs []features.Vector
		for _, v := range ev.ds.Visits {
			if v.ReadingSeconds >= alpha {
				vecs = append(vecs, v.Features)
			}
		}
		preds = make([]float64, len(vecs))
		if err := ev.pred.PredictBatchSeconds(vecs, preds); err != nil {
			return ScenarioResult{}, err
		}
	}

	// nextSame[i]: visit i+1 continues the same user session, so a release
	// at visit i shifts promotion cost onto a real next load. Without one
	// the radio idles out across the session gap either way and the
	// decision's consequence is the window energy alone.
	nextSame := make([]bool, len(ev.ds.Visits))
	for i := 0; i+1 < len(ev.ds.Visits); i++ {
		nextSame[i] = ev.ds.Visits[i+1].User == ev.ds.Visits[i].User &&
			ev.ds.Visits[i+1].Session == ev.ds.Visits[i].Session
	}

	prevUser := -1
	prevSession := -1
	stage := tp.TerminalIndex()
	var chT time.Duration // this user's position on the channel timeline
	var adaptive *Adaptive
	for i := range ev.ds.Visits {
		v := &ev.ds.Visits[i]
		if v.User != prevUser {
			// A fresh user starts a fresh phone at the schedule origin.
			stage = tp.TerminalIndex()
			chT = 0
			if p == PolicyAdaptive {
				a, err := NewAdaptive(ev.acfg, ev.tail)
				if err != nil {
					return ScenarioResult{}, err
				}
				adaptive = a
			}
			prevUser, prevSession = v.User, v.Session
		} else if v.Session != prevSession {
			// Session boundaries are minutes apart: the radio has idled out
			// and the channel has moved on.
			stage = tp.TerminalIndex()
			chT += ScenarioSessionGap
			prevSession = v.Session
		}

		pi, ok := ev.pool[v.Page]
		if !ok {
			return ScenarioResult{}, fmt.Errorf("policy: no cost for page %s", v.Page)
		}
		cost := ev.costs[pi*nseg+ev.sched.SegmentIndexAt(chT)]
		dt, dj := promoAdjustStage(tp, stage)
		res.DelayS += cost.loadS + dt
		res.EnergyJ += cost.energyJ + dj
		// The channel clock advances by the baseline (cold-start) load time,
		// not the promo-adjusted one: segment lookups must not depend on
		// earlier release decisions, or the policies would replay different
		// cost streams and the greedy oracle would lose its lower-bound
		// property to cross-visit channel coupling.
		chT += time.Duration(cost.loadS * float64(time.Second))

		reading := v.ReadingSeconds
		switchAt := -1.0 // no release
		switch p {
		case PolicyStatic, PolicyAdaptive:
			if reading >= alpha {
				pred := preds[res.Predictions]
				res.Predictions++
				res.EnergyJ += ev.device.PredictionEnergyJ(ev.pred.NumTrees())
				predD := time.Duration(pred * float64(time.Second))
				var d Decision
				if p == PolicyStatic {
					d = Evaluate(predD, ev.params)
				} else {
					d = adaptive.Decide(predD)
				}
				if d.Switch {
					switchAt = alpha
				}
			}
		case PolicyOracle:
			// Greedy per-visit minimum of window energy plus the promotion
			// delta the decision shifts onto the next load: releasing means
			// that load starts cold instead of from the held tail stage.
			if reading > alpha {
				holdJ := tailEnergy(tp, cost.tailS, reading)
				relJ := switchedWindowEnergy(tp, cost.tailS, reading, alpha)
				if nextSame[i] {
					relJ += coldPromoExtraJ(tp, stageAfter(tp, cost.tailS+reading))
				}
				if relJ < holdJ {
					switchAt = alpha
				}
			}
		}

		if switchAt >= 0 && switchAt < reading {
			wJ := switchedWindowEnergy(tp, cost.tailS, reading, switchAt)
			res.EnergyJ += wJ
			res.Switches++
			if p == PolicyAdaptive {
				heldStage := tp.TerminalIndex() // no next load: no promo shift
				if nextSame[i] {
					heldStage = stageAfter(tp, cost.tailS+reading)
				}
				adaptive.ObserveRelease(wJ, reading, heldStage)
			}
			stage = tp.TerminalIndex()
		} else {
			wJ := tailEnergy(tp, cost.tailS, reading)
			res.EnergyJ += wJ
			if p == PolicyAdaptive && reading >= alpha {
				adaptive.ObserveHold(wJ, reading)
			}
			stage = stageAfter(tp, cost.tailS+reading)
		}
		chT += time.Duration(reading * float64(time.Second))
	}
	return res, nil
}
