package policy

import (
	"eabrowse/internal/rrc"
)

// The radio-tail model: closed-form energy and state of a radio that
// finished its last data transfer and is left to the T1/T2 inactivity
// timers. Used by the trace-driven case comparison, where re-simulating
// thousands of reading windows event-by-event would be wasteful; its
// agreement with the event-driven rrc.Machine is asserted by tests.

// TailState describes the radio some time after the last transfer.
type TailState int

const (
	// TailDCH: within T1 of the last transfer.
	TailDCH TailState = iota + 1
	// TailFACH: between T1 and T1+T2.
	TailFACH
	// TailIdle: past T1+T2.
	TailIdle
)

// stateAfter returns the radio tail state elapsed seconds after the last
// transfer ended.
func stateAfter(cfg rrc.Config, elapsed float64) TailState {
	t1 := cfg.T1.Seconds()
	t2 := cfg.T2.Seconds()
	switch {
	case elapsed < t1:
		return TailDCH
	case elapsed < t1+t2:
		return TailFACH
	default:
		return TailIdle
	}
}

// tailEnergyJ integrates radio power over the window [from, from+dur)
// seconds after the last transfer, with the radio following its timers.
func tailEnergyJ(cfg rrc.Config, from, dur float64) float64 {
	if dur <= 0 {
		return 0
	}
	t1 := cfg.T1.Seconds()
	t2 := cfg.T2.Seconds()
	end := from + dur
	total := 0.0
	total += overlap(from, end, 0, t1) * cfg.PowerDCHIdle
	total += overlap(from, end, t1, t1+t2) * cfg.PowerFACH
	if end > t1+t2 {
		total += (end - max(from, t1+t2)) * cfg.PowerIdle
	}
	return total
}

// releaseEnergyJ is the cost of a fast-dormancy release (delay at release
// power plus the signaling lump).
func releaseEnergyJ(cfg rrc.Config) float64 {
	return cfg.ReleaseDelay.Seconds()*cfg.PowerRelease + cfg.ReleaseSignalEnergy
}

// switchedWindowEnergyJ integrates a reading window of dur seconds (starting
// tailElapsed after the last transfer) during which the radio is forced to
// IDLE switchAt seconds into the window.
func switchedWindowEnergyJ(cfg rrc.Config, tailElapsed, dur, switchAt float64) float64 {
	if switchAt >= dur {
		return tailEnergyJ(cfg, tailElapsed, dur)
	}
	if switchAt < 0 {
		switchAt = 0
	}
	before := tailEnergyJ(cfg, tailElapsed, switchAt)
	rel := cfg.ReleaseDelay.Seconds()
	relWindow := min(rel, dur-switchAt)
	release := relWindow*cfg.PowerRelease + cfg.ReleaseSignalEnergy
	idle := (dur - switchAt - relWindow) * cfg.PowerIdle
	if idle < 0 {
		idle = 0
	}
	return before + release + idle
}

// promoAdjust returns the load-time and load-energy adjustment for a page
// load that was measured starting from IDLE but actually starts from the
// given tail state. Warmer states promote faster and skip the signaling
// re-establishment lump.
func promoAdjust(cfg rrc.Config, s TailState) (deltaSeconds, deltaJ float64) {
	idlePromoS := cfg.PromoIdleToDCH.Seconds()
	fachPromoS := cfg.PromoFACHToDCH.Seconds()
	idlePromoJ := cfg.PromoIdleSignalEnergy + idlePromoS*cfg.PowerPromo
	fachPromoJ := fachPromoS * cfg.PowerPromo
	switch s {
	case TailFACH:
		return fachPromoS - idlePromoS, fachPromoJ - idlePromoJ
	case TailDCH:
		return -idlePromoS, -idlePromoJ
	default:
		return 0, 0
	}
}

func overlap(a0, a1, b0, b1 float64) float64 {
	lo := max(a0, b0)
	hi := min(a1, b1)
	if hi <= lo {
		return 0
	}
	return hi - lo
}

func min(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func max(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
