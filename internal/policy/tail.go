package policy

import (
	"eabrowse/internal/rrc"
)

// The radio-tail model: closed-form energy and state of a radio that
// finished its last data transfer and is left to its inactivity timers.
// Used by the trace-driven case comparison, where re-simulating thousands
// of reading windows event-by-event would be wasteful; its agreement with
// the event-driven radio machines is asserted by tests.
//
// The generic functions walk an rrc.TailProfile by stage index (0 = active,
// TerminalIndex = terminal idle), so they work for any backend; the
// rrc.Config-taking wrappers below keep the original UMTS vocabulary for
// callers and tests that think in DCH/FACH/IDLE.

// stageAfter returns the tail-stage index elapsed seconds after the last
// transfer ended, with the radio following its timers.
func stageAfter(tp *rrc.TailProfile, elapsed float64) int {
	b := tp.Active.Dwell.Seconds()
	if elapsed < b {
		return 0
	}
	for i := 0; i < tp.TerminalIndex()-1; i++ {
		b += tp.Stages[i].Dwell.Seconds()
		if elapsed < b {
			return i + 1
		}
	}
	return tp.TerminalIndex()
}

// tailEnergy integrates radio power over the window [from, from+dur)
// seconds after the last transfer, with the radio following its timers.
func tailEnergy(tp *rrc.TailProfile, from, dur float64) float64 {
	if dur <= 0 {
		return 0
	}
	end := from + dur
	total := 0.0
	lo, hi := 0.0, tp.Active.Dwell.Seconds()
	total += overlap(from, end, lo, hi) * tp.Active.PowerW
	for i := 0; i < tp.TerminalIndex()-1; i++ {
		lo, hi = hi, hi+tp.Stages[i].Dwell.Seconds()
		total += overlap(from, end, lo, hi) * tp.Stages[i].PowerW
	}
	if end > hi {
		total += (end - max(from, hi)) * tp.Terminal().PowerW
	}
	return total
}

// releaseEnergy is the cost of a fast-dormancy release (delay at release
// power plus the signaling lump).
func releaseEnergy(tp *rrc.TailProfile) float64 {
	return tp.ReleaseDelay.Seconds()*tp.ReleasePowerW + tp.ReleaseLumpJ
}

// switchedWindowEnergy integrates a reading window of dur seconds (starting
// tailElapsed after the last transfer) during which the radio is forced to
// the terminal stage switchAt seconds into the window.
func switchedWindowEnergy(tp *rrc.TailProfile, tailElapsed, dur, switchAt float64) float64 {
	if switchAt >= dur {
		return tailEnergy(tp, tailElapsed, dur)
	}
	if switchAt < 0 {
		switchAt = 0
	}
	before := tailEnergy(tp, tailElapsed, switchAt)
	rel := tp.ReleaseDelay.Seconds()
	relWindow := min(rel, dur-switchAt)
	release := relWindow*tp.ReleasePowerW + tp.ReleaseLumpJ
	idle := (dur - switchAt - relWindow) * tp.Terminal().PowerW
	if idle < 0 {
		idle = 0
	}
	return before + release + idle
}

// promoAdjustStage returns the load-time and load-energy adjustment for a
// page load that was measured starting from the terminal stage but actually
// starts from the given stage. Warmer stages promote faster and skip (part
// of) the signaling re-establishment lump.
func promoAdjustStage(tp *rrc.TailProfile, stage int) (deltaSeconds, deltaJ float64) {
	if stage == tp.TerminalIndex() {
		return 0, 0
	}
	term := tp.Terminal()
	idlePromoS := term.PromoLatency.Seconds()
	idlePromoJ := term.PromoLumpJ + idlePromoS*tp.PromoPowerW
	if stage == 0 {
		return -idlePromoS, -idlePromoJ
	}
	st := tp.Stage(stage)
	sS := st.PromoLatency.Seconds()
	return sS - idlePromoS, (st.PromoLumpJ + sS*tp.PromoPowerW) - idlePromoJ
}

// --- UMTS-named wrappers ------------------------------------------------------

// TailState describes the radio some time after the last transfer, in UMTS
// vocabulary: it is the tail-stage index shifted by one.
type TailState int

const (
	// TailDCH: within T1 of the last transfer.
	TailDCH TailState = iota + 1
	// TailFACH: between T1 and T1+T2.
	TailFACH
	// TailIdle: past T1+T2.
	TailIdle
)

// stateAfter returns the radio tail state elapsed seconds after the last
// transfer ended.
func stateAfter(cfg rrc.Config, elapsed float64) TailState {
	tail := cfg.Tail()
	return TailState(stageAfter(&tail, elapsed) + 1)
}

// tailEnergyJ integrates radio power over the window [from, from+dur)
// seconds after the last transfer, with the radio following its timers.
func tailEnergyJ(cfg rrc.Config, from, dur float64) float64 {
	tail := cfg.Tail()
	return tailEnergy(&tail, from, dur)
}

// releaseEnergyJ is the cost of a fast-dormancy release (delay at release
// power plus the signaling lump).
func releaseEnergyJ(cfg rrc.Config) float64 {
	tail := cfg.Tail()
	return releaseEnergy(&tail)
}

// switchedWindowEnergyJ integrates a reading window of dur seconds (starting
// tailElapsed after the last transfer) during which the radio is forced to
// IDLE switchAt seconds into the window.
func switchedWindowEnergyJ(cfg rrc.Config, tailElapsed, dur, switchAt float64) float64 {
	tail := cfg.Tail()
	return switchedWindowEnergy(&tail, tailElapsed, dur, switchAt)
}

// promoAdjust returns the load-time and load-energy adjustment for a page
// load that was measured starting from IDLE but actually starts from the
// given tail state. Warmer states promote faster and skip the signaling
// re-establishment lump.
func promoAdjust(cfg rrc.Config, s TailState) (deltaSeconds, deltaJ float64) {
	tail := cfg.Tail()
	return promoAdjustStage(&tail, int(s)-1)
}

func overlap(a0, a1, b0, b1 float64) float64 {
	lo := max(a0, b0)
	hi := min(a1, b1)
	if hi <= lo {
		return 0
	}
	return hi - lo
}

func min(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func max(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
