package policy

import (
	"testing"
	"time"

	"eabrowse/internal/rrc"
)

func newTestAdaptive(t *testing.T) *Adaptive {
	t.Helper()
	a, err := NewAdaptive(DefaultAdaptiveConfig(DefaultParams()), rrc.DefaultConfig().Tail())
	if err != nil {
		t.Fatalf("NewAdaptive: %v", err)
	}
	return a
}

func TestAdaptivePriorNearCrossover(t *testing.T) {
	a := newTestAdaptive(t)
	// The closed-form prior must land in the useful band: above the
	// interest threshold, at or below Td (the static delay-driven bound) —
	// the same region the paper's Fig. 3 crossover Tp = 9 s lives in.
	th := a.Threshold()
	p := DefaultParams()
	if th <= p.Alpha || th > p.Td {
		t.Fatalf("prior threshold %v outside (%v, %v]", th, p.Alpha, p.Td)
	}
}

func TestAdaptiveConfigValidate(t *testing.T) {
	p := DefaultParams()
	bad := []AdaptiveConfig{
		{Gain: 0, Floor: p.Alpha, Ceil: p.Td},
		{Gain: 1.5, Floor: p.Alpha, Ceil: p.Td},
		{Gain: 0.2, Floor: 0, Ceil: p.Td},
		{Gain: 0.2, Floor: p.Td, Ceil: p.Alpha},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Fatalf("config %d validated: %+v", i, cfg)
		}
	}
	if _, err := NewAdaptive(DefaultAdaptiveConfig(p), rrc.TailProfile{}); err == nil {
		t.Fatal("NewAdaptive accepted an empty tail profile")
	}
}

func TestAdaptiveThresholdTracksObservations(t *testing.T) {
	a := newTestAdaptive(t)
	base := a.Threshold()

	// Expensive releases push the threshold up (holding looks better)...
	for i := 0; i < 20; i++ {
		a.ObserveRelease(100, 10, a.tail.TerminalIndex())
	}
	up := a.Threshold()
	if up <= base {
		t.Fatalf("threshold %v did not rise from %v after costly releases", up, base)
	}

	// ...and hot held windows push it back down (holding looks worse).
	for i := 0; i < 50; i++ {
		a.ObserveHold(500, 10)
	}
	down := a.Threshold()
	if down >= up {
		t.Fatalf("threshold %v did not fall from %v after wasteful holds", down, up)
	}

	holds, releases := a.Observations()
	if holds != 50 || releases != 20 {
		t.Fatalf("observations = (%d, %d), want (50, 20)", holds, releases)
	}
}

func TestAdaptiveThresholdClamped(t *testing.T) {
	a := newTestAdaptive(t)
	p := DefaultParams()
	// Saturate in both directions; the clamp must hold.
	for i := 0; i < 200; i++ {
		a.ObserveRelease(1e6, 10, a.tail.TerminalIndex())
	}
	if got := a.Threshold(); got != 30*p.Td {
		t.Fatalf("threshold %v, want ceil %v", got, 30*p.Td)
	}
	for i := 0; i < 400; i++ {
		a.ObserveRelease(1e-9, 10, a.tail.TerminalIndex())
		a.ObserveHold(1e6, 10)
	}
	if got := a.Threshold(); got != p.Alpha {
		t.Fatalf("threshold %v, want floor %v", got, p.Alpha)
	}
	// Degenerate observations are ignored, not divided by.
	before := a.Threshold()
	a.ObserveHold(10, 0)
	a.ObserveRelease(10, -1, 0)
	if a.Threshold() != before {
		t.Fatal("zero-length window changed the estimate")
	}
}

func TestAdaptiveDecide(t *testing.T) {
	a := newTestAdaptive(t)
	th := a.Threshold()
	d := a.Decide(th + time.Second)
	if !d.Switch || d.Reason != "beyond-adaptive" {
		t.Fatalf("Decide(th+1s) = %+v", d)
	}
	d = a.Decide(th - time.Second)
	if d.Switch || d.Reason != "keep" {
		t.Fatalf("Decide(th-1s) = %+v", d)
	}
}

// TestAdaptiveDeterminism: identical observation sequences give bit-equal
// thresholds — the property the byte-identical replay contract rests on.
func TestAdaptiveDeterminism(t *testing.T) {
	run := func() time.Duration {
		a := newTestAdaptive(t)
		for i := 0; i < 100; i++ {
			if i%3 == 0 {
				a.ObserveRelease(float64(i%17)+3, 10, a.tail.TerminalIndex())
			} else {
				a.ObserveHold(float64(i%13)+1, 8)
			}
		}
		return a.Threshold()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("thresholds diverge: %v vs %v", a, b)
	}
}
