package policy

import (
	"math"
	"testing"
	"time"

	"eabrowse/internal/rrc"
	"eabrowse/internal/simtime"
)

func TestShouldSwitchToIdle(t *testing.T) {
	delay := DefaultParams() // delay-driven
	power := DefaultParams()
	power.Mode = ModePower
	tests := []struct {
		name      string
		predicted time.Duration
		params    Params
		want      bool
	}{
		{"delay mode, short read", 5 * time.Second, delay, false},
		{"delay mode, above Tp only", 12 * time.Second, delay, false},
		{"delay mode, above Td", 25 * time.Second, delay, true},
		{"power mode, short read", 5 * time.Second, power, false},
		{"power mode, above Tp", 12 * time.Second, power, true},
		{"power mode, above Td", 25 * time.Second, power, true},
		{"boundary Td exact", 20 * time.Second, delay, false},
		{"boundary Tp exact", 9 * time.Second, power, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := ShouldSwitchToIdle(tt.predicted, tt.params); got != tt.want {
				t.Fatalf("ShouldSwitchToIdle(%v) = %v, want %v", tt.predicted, got, tt.want)
			}
		})
	}
}

func TestModeString(t *testing.T) {
	if ModeDelay.String() != "delay-driven" || ModePower.String() != "power-driven" {
		t.Fatal("mode names wrong")
	}
	if Mode(0).String() != "unknown-mode" {
		t.Fatal("unknown mode name wrong")
	}
}

func TestCaseString(t *testing.T) {
	names := map[Case]string{
		CaseOriginal:      "Original",
		CaseOrigAlwaysOff: "Original Always-off",
		CaseEAAlwaysOff:   "Energy-Aware Always-off",
		CaseAccurate9:     "Accurate-9",
		CasePredict9:      "Predict-9",
		CaseAccurate20:    "Accurate-20",
		CasePredict20:     "Predict-20",
	}
	for c, want := range names {
		if got := c.String(); got != want {
			t.Fatalf("Case %d = %q, want %q", int(c), got, want)
		}
	}
}

func TestStateAfter(t *testing.T) {
	cfg := rrc.DefaultConfig()
	tests := []struct {
		elapsed float64
		want    TailState
	}{
		{0, TailDCH},
		{3.9, TailDCH},
		{4.1, TailFACH},
		{18.9, TailFACH},
		{19.1, TailIdle},
		{1000, TailIdle},
	}
	for _, tt := range tests {
		if got := stateAfter(cfg, tt.elapsed); got != tt.want {
			t.Fatalf("stateAfter(%v) = %v, want %v", tt.elapsed, got, tt.want)
		}
	}
}

func TestTailEnergyPiecewise(t *testing.T) {
	cfg := rrc.DefaultConfig()
	// Entire window in DCH.
	if got, want := tailEnergyJ(cfg, 0, 2), 2*cfg.PowerDCHIdle; math.Abs(got-want) > 1e-9 {
		t.Fatalf("DCH window = %v, want %v", got, want)
	}
	// Spanning DCH → FACH → idle: 4 s DCH + 15 s FACH + 1 s idle.
	want := 4*cfg.PowerDCHIdle + 15*cfg.PowerFACH + 1*cfg.PowerIdle
	if got := tailEnergyJ(cfg, 0, 20); math.Abs(got-want) > 1e-9 {
		t.Fatalf("20s window = %v, want %v", got, want)
	}
	// Starting mid-FACH.
	want = 10*cfg.PowerFACH + 5*cfg.PowerIdle
	if got := tailEnergyJ(cfg, 9, 15); math.Abs(got-want) > 1e-9 {
		t.Fatalf("mid-FACH window = %v, want %v", got, want)
	}
	// Zero/negative duration.
	if tailEnergyJ(cfg, 5, 0) != 0 || tailEnergyJ(cfg, 5, -3) != 0 {
		t.Fatal("empty window has energy")
	}
}

// TestTailEnergyMatchesRRCMachine cross-checks the closed-form tail against
// the event-driven RRC machine over several windows.
func TestTailEnergyMatchesRRCMachine(t *testing.T) {
	cfg := rrc.DefaultConfig()
	for _, windowS := range []float64{1, 3.5, 7, 12, 19, 25, 60} {
		clock := simtime.NewClock()
		m, err := rrc.NewMachine(clock, cfg)
		if err != nil {
			t.Fatalf("NewMachine: %v", err)
		}
		// Drive to DCH, run one instantaneous-ish transfer, then measure the
		// tail window.
		m.RequestDCH(func() {
			if err := m.BeginTransfer(); err != nil {
				t.Fatalf("BeginTransfer: %v", err)
			}
			clock.After(time.Millisecond, func() {
				if err := m.EndTransfer(); err != nil {
					t.Fatalf("EndTransfer: %v", err)
				}
			})
		})
		clock.RunUntil(cfg.PromoIdleToDCH + time.Millisecond)
		tailStart := m.EnergyJ()
		clock.RunFor(time.Duration(windowS * float64(time.Second)))
		got := m.EnergyJ() - tailStart
		want := tailEnergyJ(cfg, 0, windowS)
		if math.Abs(got-want) > 1e-6 {
			t.Fatalf("window %vs: machine %v J vs closed form %v J", windowS, got, want)
		}
	}
}

func TestSwitchedWindowEnergy(t *testing.T) {
	cfg := rrc.DefaultConfig()
	// Switch immediately in a 20 s window starting right after a transfer:
	// release delay at release power + lump + idle for the rest.
	rel := cfg.ReleaseDelay.Seconds()
	want := rel*cfg.PowerRelease + cfg.ReleaseSignalEnergy + (20-rel)*cfg.PowerIdle
	if got := switchedWindowEnergyJ(cfg, 0, 20, 0); math.Abs(got-want) > 1e-9 {
		t.Fatalf("switched window = %v, want %v", got, want)
	}
	// Switch at 2 s: 2 s of DCH first.
	want = 2*cfg.PowerDCHIdle + rel*cfg.PowerRelease + cfg.ReleaseSignalEnergy + (18-rel)*cfg.PowerIdle
	if got := switchedWindowEnergyJ(cfg, 0, 20, 2); math.Abs(got-want) > 1e-9 {
		t.Fatalf("switched@2 window = %v, want %v", got, want)
	}
	// Switch after the window ends: plain tail.
	if got, want := switchedWindowEnergyJ(cfg, 0, 5, 10), tailEnergyJ(cfg, 0, 5); got != want {
		t.Fatalf("late switch = %v, want tail %v", got, want)
	}
}

func TestSwitchedAlwaysCheaperForLongReads(t *testing.T) {
	cfg := rrc.DefaultConfig()
	// For a long reading window the forced release must beat the timers.
	stay := tailEnergyJ(cfg, 0, 60)
	switched := switchedWindowEnergyJ(cfg, 0, 60, 2)
	if switched >= stay {
		t.Fatalf("release (%v J) not cheaper than timers (%v J) for 60s read", switched, stay)
	}
	// For a very short window the full cost of releasing — window energy
	// plus the IDLE→DCH re-promotion the next click now pays — must lose
	// (the Fig. 3 lesson).
	stayShort := tailEnergyJ(cfg, 0, 1)
	_, promoDelta := promoAdjust(cfg, stateAfter(cfg, 1))
	stayShort += promoDelta // next load is cheaper from a warm radio
	switchedShort := switchedWindowEnergyJ(cfg, 0, 1, 0)
	if switchedShort <= stayShort {
		t.Fatalf("release (%v J) beat timers (%v J incl. warm promo) for 1s read", switchedShort, stayShort)
	}
}

func TestPromoAdjust(t *testing.T) {
	cfg := rrc.DefaultConfig()
	dt, dj := promoAdjust(cfg, TailIdle)
	if dt != 0 || dj != 0 {
		t.Fatalf("idle adjust = %v,%v, want zero", dt, dj)
	}
	dt, dj = promoAdjust(cfg, TailFACH)
	if dt >= 0 || dj >= 0 {
		t.Fatalf("FACH adjust = %v,%v, want negative (faster, cheaper)", dt, dj)
	}
	dtD, djD := promoAdjust(cfg, TailDCH)
	if dtD >= dt || djD >= dj {
		t.Fatalf("DCH adjust (%v,%v) not better than FACH (%v,%v)", dtD, djD, dt, dj)
	}
}
