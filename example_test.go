package eabrowse_test

import (
	"fmt"
	"time"

	"eabrowse"
)

// ExamplePhone loads the m.cnn.com stand-in through the energy-aware
// pipeline and shows where the radio ends up after the user reads.
func ExamplePhone() {
	page, err := eabrowse.MCNNPage()
	if err != nil {
		fmt.Println("generate:", err)
		return
	}
	phone, err := eabrowse.NewPhone(eabrowse.ModeEnergyAware)
	if err != nil {
		fmt.Println("phone:", err)
		return
	}
	if _, err := phone.LoadPage(page); err != nil {
		fmt.Println("load:", err)
		return
	}
	phone.Read(10 * time.Second)
	fmt.Println("radio after reading:", phone.RadioState())
	// Output:
	// radio after reading: IDLE
}

// ExampleShouldSwitchToIdle shows Algorithm 2's decision rule in both modes.
func ExampleShouldSwitchToIdle() {
	params := eabrowse.DefaultPolicyParams() // delay-driven, Td = 20 s
	fmt.Println("12s read, delay-driven:", eabrowse.ShouldSwitchToIdle(12*time.Second, params))
	params.Mode = eabrowse.PolicyModePower // Tp = 9 s also triggers
	fmt.Println("12s read, power-driven:", eabrowse.ShouldSwitchToIdle(12*time.Second, params))
	// Output:
	// 12s read, delay-driven: false
	// 12s read, power-driven: true
}

// ExampleGeneratePage builds a small deterministic page.
func ExampleGeneratePage() {
	page, err := eabrowse.GeneratePage(eabrowse.PageSpec{
		Name: "doc.example.com", Seed: 42,
		TextKB: 4, Sections: 2,
		Images: 3, ImageKBMin: 2, ImageKBMax: 4,
		Stylesheets: 1, CSSKB: 3, CSSRules: 20,
	})
	if err != nil {
		fmt.Println("generate:", err)
		return
	}
	fmt.Println("resources:", page.ResourceCount())
	// Output:
	// resources: 5
}
