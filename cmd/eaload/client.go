package main

import (
	"bufio"
	"bytes"
	"fmt"
	"net"
	"strconv"
	"sync"
	"time"

	"eabrowse/internal/stats"
)

// loadConfig is one generator run.
type loadConfig struct {
	addr     string
	path     string
	body     []byte
	rate     float64 // > 0: open loop at this req/s; 0: closed loop
	duration time.Duration
	warmup   time.Duration
	conns    int
	timeout  time.Duration
	budget   int
}

// connStats is one connection's slice of the result; merged in connection
// order at the end so the report is independent of goroutine scheduling.
type connStats struct {
	requests int64
	errors   int64
	non2xx   int64
	lat      *stats.Sketch // microseconds
}

// httpConn is a persistent connection speaking just enough HTTP/1.1 for the
// harness: one preformatted request, Content-Length responses, keep-alive.
// The hot path (roundTrip) allocates nothing.
type httpConn struct {
	c   net.Conn
	br  *bufio.Reader
	req []byte
}

// formatRequest preformats the request bytes sent on every round trip.
func formatRequest(cfg *loadConfig) []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "POST %s HTTP/1.1\r\n", cfg.path)
	fmt.Fprintf(&b, "Host: %s\r\n", cfg.addr)
	b.WriteString("Content-Type: application/json\r\n")
	fmt.Fprintf(&b, "Content-Length: %d\r\n", len(cfg.body))
	b.WriteString("\r\n")
	b.Write(cfg.body)
	return b.Bytes()
}

func dialConn(cfg *loadConfig, req []byte) (*httpConn, error) {
	c, err := net.DialTimeout("tcp", cfg.addr, cfg.timeout)
	if err != nil {
		return nil, err
	}
	if tc, ok := c.(*net.TCPConn); ok {
		_ = tc.SetNoDelay(true)
	}
	return &httpConn{c: c, br: bufio.NewReaderSize(c, 16<<10), req: req}, nil
}

func (hc *httpConn) close() {
	if hc.c != nil {
		_ = hc.c.Close()
	}
}

// roundTrip sends the preformatted request and fully reads one response,
// returning the status code and whether the server asked to close the
// connection.
func (hc *httpConn) roundTrip(timeout time.Duration) (status int, closeAfter bool, err error) {
	if err = hc.c.SetDeadline(time.Now().Add(timeout)); err != nil {
		return 0, true, err
	}
	if _, err = hc.c.Write(hc.req); err != nil {
		return 0, true, err
	}
	return readResponse(hc.br)
}

// readResponse parses one HTTP/1.1 response head and discards the body.
// Only Content-Length framing is supported — easerd always answers small
// fully-buffered bodies, which net/http frames with Content-Length.
func readResponse(br *bufio.Reader) (status int, closeAfter bool, err error) {
	line, err := br.ReadSlice('\n')
	if err != nil {
		return 0, true, err
	}
	// "HTTP/1.1 200 OK\r\n"
	if len(line) < 12 || !bytes.HasPrefix(line, []byte("HTTP/1.")) {
		return 0, true, fmt.Errorf("malformed status line %q", line)
	}
	status = int(line[9]-'0')*100 + int(line[10]-'0')*10 + int(line[11]-'0')
	if status < 100 || status > 599 {
		return 0, true, fmt.Errorf("bad status in %q", line)
	}
	contentLength := -1
	for {
		line, err = br.ReadSlice('\n')
		if err != nil {
			return 0, true, err
		}
		line = trimCRLF(line)
		if len(line) == 0 {
			break
		}
		if v, ok := headerValue(line, "content-length"); ok {
			n, perr := strconv.Atoi(string(v))
			if perr != nil || n < 0 {
				return 0, true, fmt.Errorf("bad Content-Length %q", v)
			}
			contentLength = n
		} else if v, ok := headerValue(line, "connection"); ok {
			if bytes.EqualFold(v, []byte("close")) {
				closeAfter = true
			}
		} else if v, ok := headerValue(line, "transfer-encoding"); ok {
			return 0, true, fmt.Errorf("unsupported transfer encoding %q", v)
		}
	}
	if contentLength < 0 {
		// No body framing we understand: without Content-Length the only
		// delimiter is connection close, which kills keep-alive throughput.
		return 0, true, fmt.Errorf("response without Content-Length")
	}
	if _, err = br.Discard(contentLength); err != nil {
		return 0, true, err
	}
	return status, closeAfter, nil
}

// trimCRLF strips a trailing \r\n or \n.
func trimCRLF(b []byte) []byte {
	if n := len(b); n > 0 && b[n-1] == '\n' {
		b = b[:n-1]
	}
	if n := len(b); n > 0 && b[n-1] == '\r' {
		b = b[:n-1]
	}
	return b
}

// headerValue matches a header line against a lower-case name, returning the
// trimmed value.
func headerValue(line []byte, name string) ([]byte, bool) {
	if len(line) < len(name)+1 {
		return nil, false
	}
	for i := 0; i < len(name); i++ {
		c := line[i]
		if 'A' <= c && c <= 'Z' {
			c += 'a' - 'A'
		}
		if c != name[i] {
			return nil, false
		}
	}
	if line[len(name)] != ':' {
		return nil, false
	}
	v := line[len(name)+1:]
	for len(v) > 0 && (v[0] == ' ' || v[0] == '\t') {
		v = v[1:]
	}
	for len(v) > 0 && (v[len(v)-1] == ' ' || v[len(v)-1] == '\t') {
		v = v[:len(v)-1]
	}
	return v, true
}

// runLoad executes one run and assembles the report.
func runLoad(cfg loadConfig) (*Report, error) {
	req := formatRequest(&cfg)
	// Fail fast if the server is unreachable before spawning the fleet.
	probe, err := dialConn(&cfg, req)
	if err != nil {
		return nil, fmt.Errorf("dial %s: %v", cfg.addr, err)
	}
	probe.close()

	perConn := make([]connStats, cfg.conns)
	start := time.Now()
	warmupEnd := start.Add(cfg.warmup)
	deadline := warmupEnd.Add(cfg.duration)

	var wg sync.WaitGroup
	for i := 0; i < cfg.conns; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			if cfg.rate > 0 {
				runOpenConn(&cfg, req, id, start, warmupEnd, deadline, &perConn[id])
			} else {
				runClosedConn(&cfg, req, warmupEnd, deadline, &perConn[id])
			}
		}(i)
	}
	wg.Wait()

	rep := &Report{
		Mode:      "closed",
		Conns:     cfg.conns,
		DurationS: cfg.duration.Seconds(),
		WarmupS:   cfg.warmup.Seconds(),
	}
	if cfg.rate > 0 {
		rep.Mode = "open"
		rep.TargetRPS = cfg.rate
	}
	merged := mergeConnStats(perConn, cfg.budget, rep)
	rep.AchievedRPS = float64(rep.Requests) / cfg.duration.Seconds()
	rep.Latency = LatencyUS{
		P50:        merged.Quantile(0.50),
		P95:        merged.Quantile(0.95),
		P99:        merged.Quantile(0.99),
		P999:       merged.Quantile(0.999),
		Mean:       merged.Mean(),
		ErrorBound: merged.ErrorBound(),
	}
	return rep, nil
}

// runOpenConn plays connection id's share of the global arrival schedule:
// arrivals id, id+conns, id+2·conns, ... at start + i/rate. Latency is
// charged from the scheduled arrival, so a backlog on this connection
// surfaces as tail latency instead of disappearing into a slowed-down
// generator.
func runOpenConn(cfg *loadConfig, req []byte, id int, start, warmupEnd, deadline time.Time, cs *connStats) {
	cs.lat = newLatSketch(cfg.budget)
	hc, err := dialConn(cfg, req)
	if err != nil {
		cs.errors++
		return
	}
	defer hc.close()
	interval := float64(time.Second) / cfg.rate
	for i := int64(id); ; i += int64(cfg.conns) {
		scheduled := start.Add(time.Duration(float64(i) * interval))
		if !scheduled.Before(deadline) {
			return
		}
		if d := time.Until(scheduled); d > 0 {
			time.Sleep(d)
		}
		record := !scheduled.Before(warmupEnd)
		status, closeAfter, err := hc.roundTrip(cfg.timeout)
		if err != nil {
			if record {
				cs.errors++
			}
			hc.close()
			if hc, err = dialConn(cfg, req); err != nil {
				cs.errors++
				return
			}
			continue
		}
		if record {
			cs.requests++
			if status < 200 || status > 299 {
				cs.non2xx++
			}
			cs.lat.Observe(float64(time.Since(scheduled))/float64(time.Microsecond), 1)
		}
		if closeAfter {
			hc.close()
			if hc, err = dialConn(cfg, req); err != nil {
				cs.errors++
				return
			}
		}
	}
}

// runClosedConn issues requests back to back until the deadline.
func runClosedConn(cfg *loadConfig, req []byte, warmupEnd, deadline time.Time, cs *connStats) {
	cs.lat = newLatSketch(cfg.budget)
	hc, err := dialConn(cfg, req)
	if err != nil {
		cs.errors++
		return
	}
	defer hc.close()
	for {
		sent := time.Now()
		if !sent.Before(deadline) {
			return
		}
		record := !sent.Before(warmupEnd)
		status, closeAfter, err := hc.roundTrip(cfg.timeout)
		if err != nil {
			if record {
				cs.errors++
			}
			hc.close()
			if hc, err = dialConn(cfg, req); err != nil {
				cs.errors++
				return
			}
			continue
		}
		if record {
			cs.requests++
			if status < 200 || status > 299 {
				cs.non2xx++
			}
			cs.lat.Observe(float64(time.Since(sent))/float64(time.Microsecond), 1)
		}
		if closeAfter {
			hc.close()
			if hc, err = dialConn(cfg, req); err != nil {
				cs.errors++
				return
			}
		}
	}
}

// mergeConnStats folds the per-connection counters and sketches (in
// connection order) into the report, returning the merged latency sketch.
func mergeConnStats(cs []connStats, budget int, rep *Report) *stats.Sketch {
	merged := newLatSketch(budget)
	for i := range cs {
		rep.Requests += cs[i].requests
		rep.Errors += cs[i].errors
		rep.Non2xx += cs[i].non2xx
		if cs[i].lat != nil {
			merged.Merge(cs[i].lat)
		}
	}
	return merged
}

func newLatSketch(budget int) *stats.Sketch {
	return stats.NewSketch(budget)
}
