// Command eaload is the load harness for easerd: it drives the service's
// HTTP endpoints at a fixed open-loop arrival rate — the coordinated-
// omission-safe way to measure a server — or in a closed-loop saturation
// mode that answers "how many requests per second can this box serve".
//
//	eaload -inprocess -rate 20000 -duration 10s        # open loop, 20k req/s
//	eaload -addr 127.0.0.1:8723 -duration 10s          # closed-loop saturation
//	eaload -addr ... -endpoint predict_batch -batch 64 # amortized batch calls
//
// Open loop: arrivals are scheduled on a fixed clock (request i fires at
// start + i/rate) and latency is measured from the *scheduled* start, not
// the send. A stalled server therefore charges its queueing delay to every
// request that should have been sent meanwhile, instead of silently slowing
// the generator down — the coordinated-omission trap most naive harnesses
// fall into. Arrivals are spread round-robin across -conns persistent
// connections, so at most -conns requests are outstanding: a true open loop
// up to that bound.
//
// Closed loop: -conns workers issue requests back to back with no think
// time. Throughput at saturation is what BENCH_SERVE.json records; the
// percentiles tell how much latency that throughput costs.
//
// Latency is accumulated in mergeable internal/stats sketches (one per
// connection, merged deterministically in connection order), reported as
// p50/p95/p99/p999 with the sketch's worst-case error receipt alongside.
// The generator speaks a minimal HTTP/1.1 dialect over persistent
// connections (preformatted request bytes, Content-Length responses) so the
// client side costs as little as possible — on a small box the harness
// shares the CPU with the server under test.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"eabrowse/internal/gbrt"
	"eabrowse/internal/predictor"
	"eabrowse/internal/serve"
	"eabrowse/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if !errors.Is(err, flag.ErrHelp) {
			fmt.Fprintln(os.Stderr, "eaload:", err)
		}
		os.Exit(1)
	}
}

// probeFeatures is the Table 1 feature vector every generated request
// carries (batch requests perturb one feature per vector so the forest sees
// distinct inputs).
var probeFeatures = [10]float64{12, 340, 25, 4, 9, 120, 0.8, 3, 2800, 320}

// endpointPath maps the -endpoint names onto URL paths.
var endpointPath = map[string]string{
	"predict":       "/v1/predict",
	"decide":        "/v1/decide",
	"predict_batch": "/v1/predict_batch",
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("eaload", flag.ContinueOnError)
	addr := fs.String("addr", "", "server address host:port (or use -inprocess)")
	endpoint := fs.String("endpoint", "predict", "endpoint to drive: predict, decide or predict_batch")
	rate := fs.Float64("rate", 0, "open-loop arrival rate in req/s (0: closed-loop saturation)")
	duration := fs.Duration("duration", 10*time.Second, "measured run length (after warmup)")
	warmup := fs.Duration("warmup", 2*time.Second, "warmup window excluded from the report")
	conns := fs.Int("conns", 16, "persistent connections (open loop: max outstanding; closed loop: workers)")
	batch := fs.Int("batch", 16, "vectors per predict_batch request")
	timeout := fs.Duration("timeout", 5*time.Second, "per-request client timeout")
	body := fs.String("body", "", "raw JSON request body overriding the generated one")
	jsonOut := fs.Bool("json", false, "report as one JSON object instead of text")
	inproc := fs.Bool("inprocess", false, "start an in-process easerd with a freshly trained demo model and drive that")
	budget := fs.Int("sketch-budget", 2048, "latency sketch centroid budget per connection")
	if err := fs.Parse(args); err != nil {
		return err
	}
	path, ok := endpointPath[*endpoint]
	if !ok {
		return fmt.Errorf("unknown endpoint %q (want predict, decide or predict_batch)", *endpoint)
	}
	if *conns < 1 || *conns > 4096 {
		return fmt.Errorf("conns %d out of range [1, 4096]", *conns)
	}
	if *batch < 1 || *batch > 4096 {
		return fmt.Errorf("batch %d out of range [1, 4096]", *batch)
	}
	if *duration <= 0 || *warmup < 0 {
		return fmt.Errorf("duration must be positive and warmup non-negative")
	}

	if *inproc {
		stop, a, err := startInprocess()
		if err != nil {
			return err
		}
		defer stop()
		*addr = a
	}
	if *addr == "" {
		return errors.New("need -addr (or -inprocess)")
	}

	payload := *body
	if payload == "" {
		payload = requestBody(*endpoint, *batch)
	}
	cfg := loadConfig{
		addr:     *addr,
		path:     path,
		body:     []byte(payload),
		rate:     *rate,
		duration: *duration,
		warmup:   *warmup,
		conns:    *conns,
		timeout:  *timeout,
		budget:   *budget,
	}
	rep, err := runLoad(cfg)
	if err != nil {
		return err
	}
	rep.Endpoint = path
	if *endpoint == "predict_batch" {
		rep.ItemsPerSec = rep.AchievedRPS * float64(*batch)
	}
	if *jsonOut {
		return rep.writeJSON(w)
	}
	rep.writeText(w)
	return nil
}

// requestBody builds the canonical JSON body for an endpoint.
func requestBody(endpoint string, batch int) string {
	vec := func(perturb float64) string {
		var sb strings.Builder
		sb.WriteByte('[')
		for i, f := range probeFeatures {
			if i > 0 {
				sb.WriteByte(',')
			}
			if i == 1 { // content size, a feature where variation is natural
				f += perturb
			}
			sb.WriteString(strconv.FormatFloat(f, 'g', -1, 64))
		}
		sb.WriteByte(']')
		return sb.String()
	}
	switch endpoint {
	case "decide":
		return `{"features":` + vec(0) + `,"mode":"power"}`
	case "predict_batch":
		var sb strings.Builder
		sb.WriteString(`{"features":[`)
		for i := 0; i < batch; i++ {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(vec(float64(i)))
		}
		sb.WriteString(`]}`)
		return sb.String()
	default:
		return `{"features":` + vec(0) + `}`
	}
}

// Report is the harness's machine-readable result.
type Report struct {
	Endpoint    string  `json:"endpoint"`
	Mode        string  `json:"mode"` // "open" or "closed"
	TargetRPS   float64 `json:"target_rps,omitempty"`
	Conns       int     `json:"conns"`
	DurationS   float64 `json:"duration_s"`
	WarmupS     float64 `json:"warmup_s"`
	Requests    int64   `json:"requests"`
	Errors      int64   `json:"errors"`
	Non2xx      int64   `json:"non_2xx"`
	AchievedRPS float64 `json:"achieved_rps"`
	// ItemsPerSec is AchievedRPS x batch for predict_batch runs.
	ItemsPerSec float64   `json:"items_per_sec,omitempty"`
	Latency     LatencyUS `json:"latency_us"`
}

// LatencyUS summarizes the latency sketch in microseconds.
type LatencyUS struct {
	P50        float64 `json:"p50"`
	P95        float64 `json:"p95"`
	P99        float64 `json:"p99"`
	P999       float64 `json:"p999"`
	Mean       float64 `json:"mean"`
	ErrorBound float64 `json:"error_bound"`
}

func (r *Report) writeText(w io.Writer) {
	fmt.Fprintf(w, "eaload: %s %s, %d conns, %.0fs measured (%.0fs warmup)\n",
		r.Mode, r.Endpoint, r.Conns, r.DurationS, r.WarmupS)
	if r.Mode == "open" {
		fmt.Fprintf(w, "target rate %.0f req/s\n", r.TargetRPS)
	}
	fmt.Fprintf(w, "%d requests, %d errors, %d non-2xx\n", r.Requests, r.Errors, r.Non2xx)
	fmt.Fprintf(w, "throughput %.1f req/s", r.AchievedRPS)
	if r.ItemsPerSec > 0 {
		fmt.Fprintf(w, " (%.1f vectors/s)", r.ItemsPerSec)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "latency us: p50 %.1f  p95 %.1f  p99 %.1f  p99.9 %.1f  mean %.1f  (sketch error <= %.1f)\n",
		r.Latency.P50, r.Latency.P95, r.Latency.P99, r.Latency.P999, r.Latency.Mean, r.Latency.ErrorBound)
}

// writeJSON emits the report as one indented JSON object. Hand-formatted so
// the field order is stable for awk/jq consumers either way.
func (r *Report) writeJSON(w io.Writer) error {
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	var sb strings.Builder
	sb.WriteString("{\n")
	fmt.Fprintf(&sb, "  %q: %q,\n", "endpoint", r.Endpoint)
	fmt.Fprintf(&sb, "  %q: %q,\n", "mode", r.Mode)
	if r.TargetRPS > 0 {
		fmt.Fprintf(&sb, "  %q: %s,\n", "target_rps", f(r.TargetRPS))
	}
	fmt.Fprintf(&sb, "  %q: %d,\n", "conns", r.Conns)
	fmt.Fprintf(&sb, "  %q: %s,\n", "duration_s", f(r.DurationS))
	fmt.Fprintf(&sb, "  %q: %s,\n", "warmup_s", f(r.WarmupS))
	fmt.Fprintf(&sb, "  %q: %d,\n", "requests", r.Requests)
	fmt.Fprintf(&sb, "  %q: %d,\n", "errors", r.Errors)
	fmt.Fprintf(&sb, "  %q: %d,\n", "non_2xx", r.Non2xx)
	fmt.Fprintf(&sb, "  %q: %s,\n", "achieved_rps", f(r.AchievedRPS))
	if r.ItemsPerSec > 0 {
		fmt.Fprintf(&sb, "  %q: %s,\n", "items_per_sec", f(r.ItemsPerSec))
	}
	fmt.Fprintf(&sb, "  %q: {", "latency_us")
	fmt.Fprintf(&sb, "%q: %s, ", "p50", f(r.Latency.P50))
	fmt.Fprintf(&sb, "%q: %s, ", "p95", f(r.Latency.P95))
	fmt.Fprintf(&sb, "%q: %s, ", "p99", f(r.Latency.P99))
	fmt.Fprintf(&sb, "%q: %s, ", "p999", f(r.Latency.P999))
	fmt.Fprintf(&sb, "%q: %s, ", "mean", f(r.Latency.Mean))
	fmt.Fprintf(&sb, "%q: %s}\n", "error_bound", f(r.Latency.ErrorBound))
	sb.WriteString("}\n")
	_, err := io.WriteString(w, sb.String())
	return err
}

// startInprocess trains a small demo model and boots a serve.Server around
// it, returning a teardown closure and the bound address.
func startInprocess() (func(), string, error) {
	dir, err := os.MkdirTemp("", "eaload")
	if err != nil {
		return nil, "", err
	}
	cleanupDir := func() { _ = os.RemoveAll(dir) }
	modelPath := filepath.Join(dir, "model.json")
	if err := trainDemoModel(modelPath); err != nil {
		cleanupDir()
		return nil, "", err
	}
	srv, err := serve.New(serve.Config{Addr: "127.0.0.1:0", ModelPath: modelPath})
	if err != nil {
		cleanupDir()
		return nil, "", err
	}
	if err := srv.Start(context.Background()); err != nil {
		cleanupDir()
		return nil, "", err
	}
	stop := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
		cleanupDir()
	}
	return stop, srv.Addr(), nil
}

// trainDemoModel trains the paper's predictor on the synthetic dataset —
// the same model easerd -train-demo produces.
func trainDemoModel(path string) error {
	ds, err := trace.Synthesize(trace.DefaultConfig())
	if err != nil {
		return err
	}
	train, _, err := predictor.Split(ds.Visits, 0.3, 20130709)
	if err != nil {
		return err
	}
	p, err := predictor.Train(train, predictor.Config{
		GBRT:                 gbrt.DefaultConfig(),
		UseInterestThreshold: true,
		Alpha:                2,
	})
	if err != nil {
		return err
	}
	return p.SaveFile(path)
}
