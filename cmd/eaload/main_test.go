package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestRequestBodyShapes(t *testing.T) {
	var pr struct {
		Features []float64 `json:"features"`
	}
	if err := json.Unmarshal([]byte(requestBody("predict", 1)), &pr); err != nil {
		t.Fatalf("predict body: %v", err)
	}
	if len(pr.Features) != 10 {
		t.Fatalf("predict features = %d, want 10", len(pr.Features))
	}

	var dr struct {
		Features []float64 `json:"features"`
		Mode     string    `json:"mode"`
	}
	if err := json.Unmarshal([]byte(requestBody("decide", 1)), &dr); err != nil {
		t.Fatalf("decide body: %v", err)
	}
	if dr.Mode != "power" || len(dr.Features) != 10 {
		t.Fatalf("decide body = mode %q, %d features", dr.Mode, len(dr.Features))
	}

	var br struct {
		Features [][]float64 `json:"features"`
	}
	if err := json.Unmarshal([]byte(requestBody("predict_batch", 7)), &br); err != nil {
		t.Fatalf("batch body: %v", err)
	}
	if len(br.Features) != 7 {
		t.Fatalf("batch vectors = %d, want 7", len(br.Features))
	}
	// Vectors must differ so the forest walk isn't trivially cached.
	if br.Features[0][1] == br.Features[6][1] {
		t.Fatalf("batch vectors not perturbed: %v vs %v", br.Features[0], br.Features[6])
	}
}

func TestReadResponse(t *testing.T) {
	cases := []struct {
		name       string
		raw        string
		status     int
		closeAfter bool
		wantErr    bool
	}{
		{
			name:   "ok",
			raw:    "HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nContent-Length: 5\r\n\r\nhello",
			status: 200,
		},
		{
			name:   "status with reason and folded casing",
			raw:    "HTTP/1.1 429 Too Many Requests\r\ncontent-length: 2\r\n\r\n{}",
			status: 429,
		},
		{
			name:       "connection close honored",
			raw:        "HTTP/1.1 200 OK\r\nContent-Length: 0\r\nConnection: close\r\n\r\n",
			status:     200,
			closeAfter: true,
		},
		{
			name:    "chunked unsupported",
			raw:     "HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n0\r\n\r\n",
			wantErr: true,
		},
		{
			name:    "no framing",
			raw:     "HTTP/1.1 200 OK\r\n\r\n",
			wantErr: true,
		},
		{
			name:    "garbage",
			raw:     "ICY 200 OK\r\n\r\n",
			wantErr: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, closeAfter, err := readResponse(bufio.NewReader(strings.NewReader(tc.raw)))
			if tc.wantErr {
				if err == nil {
					t.Fatalf("want error, got status %d", status)
				}
				return
			}
			if err != nil {
				t.Fatalf("readResponse: %v", err)
			}
			if status != tc.status || closeAfter != tc.closeAfter {
				t.Fatalf("got status %d closeAfter %v, want %d %v", status, closeAfter, tc.status, tc.closeAfter)
			}
		})
	}
}

// TestReadResponseKeepAlive feeds two back-to-back responses through one
// reader — the keep-alive case the load loop depends on.
func TestReadResponseKeepAlive(t *testing.T) {
	raw := "HTTP/1.1 200 OK\r\nContent-Length: 3\r\n\r\nabc" +
		"HTTP/1.1 503 Service Unavailable\r\nContent-Length: 4\r\n\r\nbusy"
	br := bufio.NewReader(strings.NewReader(raw))
	for i, want := range []int{200, 503} {
		status, _, err := readResponse(br)
		if err != nil {
			t.Fatalf("response %d: %v", i, err)
		}
		if status != want {
			t.Fatalf("response %d status = %d, want %d", i, status, want)
		}
	}
}

func TestFormatRequest(t *testing.T) {
	cfg := loadConfig{addr: "127.0.0.1:9", path: "/v1/predict", body: []byte(`{"features":[1]}`)}
	req := string(formatRequest(&cfg))
	for _, want := range []string{
		"POST /v1/predict HTTP/1.1\r\n",
		"Host: 127.0.0.1:9\r\n",
		"Content-Length: 16\r\n",
		"\r\n\r\n", // header terminator
		`{"features":[1]}`,
	} {
		if !strings.Contains(req, want) {
			t.Fatalf("request %q missing %q", req, want)
		}
	}
}

// TestOpenLoopSchedulePartition checks that the round-robin arrival split
// covers every arrival index exactly once across connections.
func TestOpenLoopSchedulePartition(t *testing.T) {
	const conns, total = 4, 41
	seen := make([]int, total)
	for id := 0; id < conns; id++ {
		for i := int64(id); i < total; i += int64(conns) {
			seen[i]++
		}
	}
	for i, n := range seen {
		if n != 1 {
			t.Fatalf("arrival %d covered %d times", i, n)
		}
	}
}

func TestReportJSONStable(t *testing.T) {
	rep := &Report{
		Endpoint: "/v1/predict", Mode: "open", TargetRPS: 1000, Conns: 4,
		DurationS: 2, WarmupS: 1, Requests: 2000, AchievedRPS: 999.5,
		Latency: LatencyUS{P50: 10, P95: 20, P99: 30, P999: 40, Mean: 12.5, ErrorBound: 0.5},
	}
	var buf bytes.Buffer
	if err := rep.writeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("report is not valid JSON: %v\n%s", err, buf.String())
	}
	if back != *rep {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", back, *rep)
	}
	// Stable field order for line-oriented consumers.
	if !strings.Contains(buf.String(), `"endpoint": "/v1/predict"`) {
		t.Fatalf("unexpected formatting:\n%s", buf.String())
	}
}

func TestRunFlagValidation(t *testing.T) {
	for _, args := range [][]string{
		{"-endpoint", "nope", "-addr", "x"},
		{"-conns", "0", "-addr", "x"},
		{"-batch", "0", "-addr", "x"},
		{"-duration", "0s", "-addr", "x"},
		{}, // no addr, no -inprocess
	} {
		if err := run(args, &bytes.Buffer{}); err == nil {
			t.Fatalf("run(%v) succeeded, want error", args)
		}
	}
}

// TestEndToEndInprocess boots the in-process server and runs a tiny
// closed-loop and open-loop measurement against each endpoint.
func TestEndToEndInprocess(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model; skipped in -short")
	}
	stop, addr, err := startInprocess()
	if err != nil {
		t.Fatalf("startInprocess: %v", err)
	}
	defer stop()

	for _, tc := range []struct {
		endpoint string
		rate     float64
	}{
		{"predict", 0},
		{"decide", 200},
		{"predict_batch", 0},
	} {
		cfg := loadConfig{
			addr:     addr,
			path:     endpointPath[tc.endpoint],
			body:     []byte(requestBody(tc.endpoint, 4)),
			rate:     tc.rate,
			duration: 300 * time.Millisecond,
			warmup:   100 * time.Millisecond,
			conns:    2,
			timeout:  5 * time.Second,
			budget:   256,
		}
		rep, err := runLoad(cfg)
		if err != nil {
			t.Fatalf("%s: runLoad: %v", tc.endpoint, err)
		}
		if rep.Requests == 0 {
			t.Fatalf("%s: no requests recorded", tc.endpoint)
		}
		if rep.Errors != 0 || rep.Non2xx != 0 {
			t.Fatalf("%s: errors=%d non2xx=%d", tc.endpoint, rep.Errors, rep.Non2xx)
		}
		if rep.Latency.P50 <= 0 || rep.Latency.P99 < rep.Latency.P50 {
			t.Fatalf("%s: implausible latency %+v", tc.endpoint, rep.Latency)
		}
		wantMode := "closed"
		if tc.rate > 0 {
			wantMode = "open"
		}
		if rep.Mode != wantMode {
			t.Fatalf("%s: mode = %q, want %q", tc.endpoint, rep.Mode, wantMode)
		}
	}
}
