package main

import (
	"os"
	"path/filepath"
	"testing"

	"eabrowse/internal/trace"
)

func TestSmallTrace(t *testing.T) {
	if err := run([]string{"-users", "2", "-hours", "0.5"}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestBadFlags(t *testing.T) {
	if err := run([]string{"-users", "0"}); err == nil {
		t.Fatal("zero users accepted")
	}
	if err := run([]string{"-what"}); err == nil {
		t.Fatal("unknown flag accepted")
	}
}

func TestCSVOutput(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.csv")
	if err := run([]string{"-users", "2", "-hours", "0.5", "-csv", path}); err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if len(data) == 0 {
		t.Fatal("empty CSV written")
	}
}

func TestJSONOutputRoundTrips(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	if err := run([]string{"-users", "2", "-hours", "0.5", "-json", path}); err != nil {
		t.Fatalf("run: %v", err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer f.Close()
	visits, err := trace.ReadVisits(f)
	if err != nil {
		t.Fatalf("ReadVisits: %v", err)
	}
	if len(visits) == 0 {
		t.Fatal("no visits round-tripped")
	}
}
