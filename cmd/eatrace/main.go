// Command eatrace synthesizes the Section 5.1.3 browsing trace and prints
// its statistics: the Fig. 7 reading-time CDF, the Table 4 correlations, and
// per-user summaries. With -csv it dumps the visits for external analysis.
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"strconv"
	"text/tabwriter"

	"eabrowse/internal/experiments"
	"eabrowse/internal/features"
	"eabrowse/internal/stats"
	"eabrowse/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "eatrace:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("eatrace", flag.ContinueOnError)
	users := fs.Int("users", 40, "number of users")
	hours := fs.Float64("hours", 2, "browsing hours per user")
	seed := fs.Int64("seed", 20130708, "synthesis seed")
	csvPath := fs.String("csv", "", "write visits to this CSV file")
	jsonPath := fs.String("json", "", "write visits as JSON lines (reloadable with trace.ReadVisits)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := trace.DefaultConfig()
	cfg.Users = *users
	cfg.HoursPerUser = *hours
	cfg.Seed = *seed
	ds, err := trace.Synthesize(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("synthesized %d visits from %d users over %d pool pages\n\n",
		len(ds.Visits), cfg.Users, len(ds.Pool))

	fig7, err := experiments.Fig7From(ds)
	if err != nil {
		return err
	}
	fmt.Printf("reading-time CDF: P(<2s)=%.1f%%  P(<9s)=%.1f%%  P(<20s)=%.1f%%  (paper: 30/53/68)\n\n",
		fig7.Under2Pct, fig7.Under9Pct, fig7.Under20Pct)

	t4, err := experiments.Table4From(ds)
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintln(w, "feature\tPearson r with reading time")
	for i, name := range t4.Names {
		fmt.Fprintf(w, "%s\t%+.4f\n", name, t4.Correlations[i])
	}
	w.Flush()

	reads := make([]float64, 0, len(ds.Visits))
	for _, v := range ds.Visits {
		reads = append(reads, v.ReadingSeconds)
	}
	sum, err := stats.Summarize(reads)
	if err != nil {
		return err
	}
	fmt.Printf("\nreading time: mean %.1fs  median %.1fs  p90 %.1fs  max %.0fs\n",
		sum.Mean, sum.P50, sum.P90, sum.Max)

	if *csvPath != "" {
		if err := writeCSV(*csvPath, ds); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *csvPath)
	}
	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := ds.WriteVisits(f); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}
	return nil
}

func writeCSV(path string, ds *trace.Dataset) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	header := []string{"user", "session", "page", "reading_seconds"}
	for _, n := range features.Names {
		header = append(header, n)
	}
	if err := w.Write(header); err != nil {
		return err
	}
	for _, v := range ds.Visits {
		row := []string{
			strconv.Itoa(v.User),
			strconv.Itoa(v.Session),
			v.Page,
			strconv.FormatFloat(v.ReadingSeconds, 'f', 3, 64),
		}
		for _, x := range v.Features {
			row = append(row, strconv.FormatFloat(x, 'f', 4, 64))
		}
		if err := w.Write(row); err != nil {
			return err
		}
	}
	w.Flush()
	return w.Error()
}
