// Command eabrowse loads one benchmark page through the original or the
// energy-aware pipeline on the simulated 3G testbed and prints the load
// timeline, object statistics and energy breakdown.
//
// Usage:
//
//	eabrowse [-page espn.go.com/sports] [-mode both|original|energy-aware]
//	         [-reading 20s] [-list]
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"
	"time"

	"eabrowse/internal/browser"
	"eabrowse/internal/experiments"
	"eabrowse/internal/rrc"
	"eabrowse/internal/webpage"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "eabrowse:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("eabrowse", flag.ContinueOnError)
	residency := fs.Bool("residency", false, "print radio state residency after load+reading")
	pageName := fs.String("page", "espn.go.com/sports", "benchmark page to load")
	mode := fs.String("mode", "both", "pipeline: original, energy-aware or both")
	reading := fs.Duration("reading", 20*time.Second, "reading time simulated after the load")
	timeline := fs.Bool("timeline", false, "print the load event timeline")
	list := fs.Bool("list", false, "list benchmark pages and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		fmt.Println("mobile benchmark:")
		for _, n := range webpage.MobilePageNames {
			fmt.Println("  " + n)
		}
		fmt.Println("full benchmark:")
		for _, n := range webpage.FullPageNames {
			fmt.Println("  " + n)
		}
		return nil
	}

	page, err := experiments.PageByName(*pageName)
	if err != nil {
		return err
	}

	var modes []browser.Mode
	switch *mode {
	case "original":
		modes = []browser.Mode{browser.ModeOriginal}
	case "energy-aware":
		modes = []browser.Mode{browser.ModeEnergyAware}
	case "both":
		modes = []browser.Mode{browser.ModeOriginal, browser.ModeEnergyAware}
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}

	fmt.Printf("page %s: %d resources, %d KB total\n\n",
		page.Name, page.ResourceCount(), page.TotalBytes()/1024)

	var opts []browser.Option
	if *timeline {
		opts = append(opts, browser.WithEventLog())
	}

	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintln(w, "pipeline\ttransmission\tfirst display\tfinal display\tload J\tload+read J\treflows\tredraws\tobjects")
	results := make(map[browser.Mode]*browser.Result, len(modes))
	residencies := make(map[browser.Mode]map[rrc.State]time.Duration, len(modes))
	for _, m := range modes {
		out, err := experiments.LoadPageObserved(page, m, *reading, func(s *experiments.Session) {
			residencies[m] = s.Radio.Residency()
		}, opts...)
		if err != nil {
			return err
		}
		r := out.Result
		results[m] = r
		fmt.Fprintf(w, "%s\t%.1fs\t%.1fs\t%.1fs\t%.1f\t%.1f\t%d\t%d\t%d\n",
			m, r.TransmissionTime.Seconds(), r.FirstDisplayAt.Seconds(),
			r.FinalDisplayAt.Seconds(), r.TotalEnergyJ(), out.TotalWithReadingJ,
			r.Reflows, r.Redraws, r.Objects)
	}
	if err := w.Flush(); err != nil {
		return err
	}

	if *timeline {
		for _, m := range modes {
			fmt.Printf("\n%s timeline:\n", m)
			for _, ev := range results[m].Events {
				fmt.Printf("  %7.2fs  %-18s %s\n", ev.At.Seconds(), ev.Kind, ev.Detail)
			}
		}
	}
	if *residency {
		order := []rrc.State{rrc.StateIdle, rrc.StateFACH, rrc.StateDCH,
			rrc.StatePromoIdleDCH, rrc.StatePromoFACHDCH, rrc.StateReleasing}
		for _, m := range modes {
			fmt.Printf("\n%s radio residency:\n", m)
			for _, st := range order {
				if d := residencies[m][st]; d > 0 {
					fmt.Printf("  %-17v %8.2fs\n", st, d.Seconds())
				}
			}
		}
	}
	return nil
}
