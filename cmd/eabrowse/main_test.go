package main

import "testing"

func TestListPages(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatalf("run(-list): %v", err)
	}
}

func TestUnknownPage(t *testing.T) {
	if err := run([]string{"-page", "no.such.page"}); err == nil {
		t.Fatal("unknown page accepted")
	}
}

func TestUnknownMode(t *testing.T) {
	if err := run([]string{"-mode", "warp"}); err == nil {
		t.Fatal("unknown mode accepted")
	}
}

func TestLoadMobilePage(t *testing.T) {
	if err := run([]string{"-page", "m.cnn.com", "-mode", "both", "-reading", "5s"}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestTimeline(t *testing.T) {
	if err := run([]string{"-page", "m.ebay.com", "-mode", "energy-aware", "-timeline"}); err != nil {
		t.Fatalf("run(-timeline): %v", err)
	}
}
