package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"eabrowse/internal/predictor"
	"eabrowse/internal/serve"
)

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-no-such-flag"}, nil); err == nil {
		t.Fatal("unknown flag accepted")
	}
}

// TestTrainServeReloadShutdown walks the whole daemon lifecycle in-process:
// train a demo model, serve it, hot-reload on SIGHUP, stop on SIGTERM with a
// metrics flush.
func TestTrainServeReloadShutdown(t *testing.T) {
	dir := t.TempDir()
	modelPath := filepath.Join(dir, "model.json")
	metricsPath := filepath.Join(dir, "metrics.json")

	if err := run([]string{"-train-demo", modelPath}, nil); err != nil {
		t.Fatalf("-train-demo: %v", err)
	}
	if _, err := predictor.LoadFile(modelPath); err != nil {
		t.Fatalf("demo model does not load back: %v", err)
	}

	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-addr", "127.0.0.1:0",
			"-model", modelPath,
			"-metrics-out", metricsPath,
			"-drain", "5s",
		}, ready)
	}()
	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr
	case err := <-done:
		t.Fatalf("daemon exited during startup: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("daemon never became ready")
	}

	body := []byte(`{"features":[12,340,25,4,9,120,0.8,3,2800,320]}`)
	resp, err := http.Post(base+"/v1/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("predict: %v", err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict: %d (%s)", resp.StatusCode, raw)
	}

	// SIGHUP hot-reloads the model file: the served generation advances
	// without dropping the service.
	if err := syscall.Kill(os.Getpid(), syscall.SIGHUP); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		r, err := http.Get(base + "/metrics")
		if err != nil {
			t.Fatalf("metrics: %v", err)
		}
		var m serve.Metrics
		err = json.NewDecoder(r.Body).Decode(&m)
		r.Body.Close()
		if err != nil {
			t.Fatalf("metrics decode: %v", err)
		}
		if m.Model.Generation == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("SIGHUP reload never landed; metrics %+v", m.Model)
		}
		time.Sleep(10 * time.Millisecond)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exit: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not stop on SIGTERM")
	}

	flushed, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatalf("metrics flush missing: %v", err)
	}
	var m serve.Metrics
	if err := json.Unmarshal(flushed, &m); err != nil {
		t.Fatalf("flushed metrics invalid: %v", err)
	}
	if m.Requests == 0 || m.Model.Reloads != 1 {
		t.Fatalf("flushed metrics: %+v", m)
	}
}
