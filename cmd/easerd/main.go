// Command easerd is the resident energy-aware prediction service: it loads a
// trained GBRT reading-time model and serves the paper's predict/decide loop
// (and on-demand page-load simulations) over HTTP until told to stop.
//
// Start it against a model file, then drive it with curl:
//
//	easerd -train-demo model.json        # train a demo model and exit
//	easerd -model model.json -addr :8723
//
//	curl -s localhost:8723/v1/predict -d '{"features":[12,340,25,4,9,120,0.8,3,2800,320]}'
//	curl -s localhost:8723/v1/decide  -d '{"features":[...],"mode":"power"}'
//	curl -s localhost:8723/v1/simulate -d '{"page":"m.cnn.com","radio":"lte","reading_s":20}'
//	curl -s -X POST localhost:8723/admin/reload
//
// predict and simulate accept an optional "radio" profile name ("umts",
// "lte", "nr"; default "umts"): simulate runs the load on that backend,
// predict validates and echoes it so mixed-RAN clients can correlate
// responses. /metrics lists the registered profiles.
//
// SIGHUP reloads the model file in place (validate-then-swap; a bad file is
// rejected and the old model keeps serving). SIGINT/SIGTERM shut down
// gracefully: readiness flips first, in-flight requests drain, and the final
// metrics snapshot is flushed to stderr (or -metrics-out).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"eabrowse/internal/gbrt"
	"eabrowse/internal/predictor"
	"eabrowse/internal/serve"
	"eabrowse/internal/trace"
)

func main() {
	if err := run(os.Args[1:], nil); err != nil {
		if !errors.Is(err, flag.ErrHelp) {
			fmt.Fprintln(os.Stderr, "easerd:", err)
		}
		os.Exit(1)
	}
}

// run is the testable entry point. When ready is non-nil it receives the
// bound listen address once the service is accepting (tests use it to find
// the port and to shut down via the returned context).
func run(args []string, ready chan<- string) error {
	fs := flag.NewFlagSet("easerd", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8723", "listen address (host:port)")
	model := fs.String("model", "", "trained predictor file (see -train-demo); empty starts not-ready until a reload")
	workers := fs.Int("workers", 0, "prediction worker-pool size (<= 0: GOMAXPROCS)")
	queue := fs.Int("queue", 0, "bounded backlog between HTTP front and workers (<= 0: 256); full queue answers 429")
	timeout := fs.Duration("timeout", 0, "per-request deadline (<= 0: 5s); clients may shorten it via X-Request-Timeout-Ms")
	maxBody := fs.Int64("max-body", 0, "request-body size cap in bytes (<= 0: 1 MiB)")
	metricsOut := fs.String("metrics-out", "", "write the final metrics snapshot to this file on shutdown (default: stderr)")
	drain := fs.Duration("drain", 10*time.Second, "graceful-shutdown budget for in-flight requests")
	trainDemo := fs.String("train-demo", "", "train a predictor on the synthetic dataset, save it to this path, and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *trainDemo != "" {
		return trainDemoModel(*trainDemo)
	}

	srv, err := serve.New(serve.Config{
		Addr:           *addr,
		ModelPath:      *model,
		Workers:        *workers,
		QueueDepth:     *queue,
		RequestTimeout: *timeout,
		MaxBodyBytes:   *maxBody,
	})
	if err != nil {
		return err
	}
	// Signals are registered before the service comes up so a reload or stop
	// arriving in the startup window is queued, not fatal.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	defer signal.Stop(hup)
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM)
	defer signal.Stop(stop)

	if err := srv.Start(context.Background()); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "easerd: serving on %s (model %q, ready=%v)\n", srv.Addr(), *model, srv.Ready())
	if ready != nil {
		ready <- srv.Addr()
	}

	for {
		select {
		case <-hup:
			if gen, err := srv.Reload(); err != nil {
				fmt.Fprintf(os.Stderr, "easerd: reload rejected (still serving generation %d): %v\n", gen, err)
			} else {
				fmt.Fprintf(os.Stderr, "easerd: reloaded model, now serving generation %d\n", gen)
			}
		case sig := <-stop:
			fmt.Fprintf(os.Stderr, "easerd: %v, draining for up to %v\n", sig, *drain)
			ctx, cancel := context.WithTimeout(context.Background(), *drain)
			err := srv.Shutdown(ctx)
			cancel()
			if ferr := flushMetrics(srv, *metricsOut); ferr != nil && err == nil {
				err = ferr
			}
			return err
		}
	}
}

// flushMetrics writes the final snapshot to the given path, or stderr.
func flushMetrics(srv *serve.Server, path string) error {
	if path == "" {
		return srv.WriteMetrics(os.Stderr)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := srv.WriteMetrics(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// trainDemoModel trains the paper's predictor configuration on the synthetic
// dataset and saves it, so the curl cookbook is self-contained.
func trainDemoModel(path string) error {
	ds, err := trace.Synthesize(trace.DefaultConfig())
	if err != nil {
		return err
	}
	train, test, err := predictor.Split(ds.Visits, 0.3, 20130709)
	if err != nil {
		return err
	}
	cfg := predictor.Config{
		GBRT:                 gbrt.DefaultConfig(),
		UseInterestThreshold: true,
		Alpha:                2,
	}
	p, err := predictor.Train(train, cfg)
	if err != nil {
		return err
	}
	if err := p.SaveFile(path); err != nil {
		return err
	}
	acc, err := p.Evaluate(test, 0.5, true)
	if err != nil {
		return err
	}
	fmt.Printf("easerd: trained %d-tree predictor on %d visits (holdout accuracy %.1f%%), saved to %s\n",
		p.NumTrees(), len(train), acc.Pct(), path)
	return nil
}
