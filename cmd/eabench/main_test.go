package main

import (
	"testing"

	"eabrowse/internal/experiments"
)

func TestListFlag(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatalf("run(-list): %v", err)
	}
}

func TestUnknownExperiment(t *testing.T) {
	if err := run([]string{"-exp", "fig99"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestBadFlag(t *testing.T) {
	if err := run([]string{"-nope"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestTable5Experiment(t *testing.T) {
	if err := run([]string{"-exp", "table5"}); err != nil {
		t.Fatalf("run(table5): %v", err)
	}
}

func TestFig3Experiment(t *testing.T) {
	if err := run([]string{"-exp", "fig3"}); err != nil {
		t.Fatalf("run(fig3): %v", err)
	}
}

func TestBadFaultLoss(t *testing.T) {
	// A loss rate outside [0, 1) must be rejected by the chaos experiment.
	if err := run([]string{"-exp", "chaos", "-fault-loss", "1.5"}); err == nil {
		t.Fatal("chaos accepted -fault-loss 1.5")
	}
}

func TestExperimentNamesUnique(t *testing.T) {
	opts := benchOptions{
		profile: experiments.DefaultChaosProfile(),
		maxLoss: 0.3,
		fleet:   experiments.DefaultFleetConfig(),
	}
	seen := make(map[string]bool)
	for _, e := range allExperiments(opts) {
		if seen[e.name] {
			t.Fatalf("duplicate experiment %q", e.name)
		}
		seen[e.name] = true
		if e.desc == "" || e.run == nil {
			t.Fatalf("experiment %q incomplete", e.name)
		}
	}
}

func TestParallelFlag(t *testing.T) {
	// -parallel is accepted and heavy experiments stay out of 'all' (fleet
	// must only run when named).
	if err := run([]string{"-exp", "table5", "-parallel", "2"}); err != nil {
		t.Fatalf("run(table5 -parallel 2): %v", err)
	}
}

func TestBadFleetUsers(t *testing.T) {
	if err := run([]string{"-exp", "fleet", "-fleet-users", "0"}); err == nil {
		t.Fatal("fleet accepted -fleet-users 0")
	}
}

func TestBadRadioProfile(t *testing.T) {
	if err := run([]string{"-exp", "table5", "-radio", "wimax"}); err == nil {
		t.Fatal("unknown -radio profile accepted")
	}
}

func TestRadioFlag(t *testing.T) {
	// -radio switches the process-wide default; restore it for later tests.
	defer func() {
		if err := experiments.SetDefaultRadioProfile("umts"); err != nil {
			t.Fatal(err)
		}
	}()
	if err := run([]string{"-exp", "table5", "-radio", "lte"}); err != nil {
		t.Fatalf("run(table5 -radio lte): %v", err)
	}
}

func TestBadFleetRadioMix(t *testing.T) {
	if err := run([]string{"-exp", "fleet", "-fleet-radio-mix", "umts"}); err == nil {
		t.Fatal("fleet accepted a weightless radio mix")
	}
	if err := run([]string{"-exp", "fleet", "-fleet-radio-mix", "umts:0.5,zz:0.5"}); err == nil {
		t.Fatal("fleet accepted an unknown profile in the radio mix")
	}
}

// TestBadPprofAddr checks an unbindable -pprof address fails the run
// immediately instead of dying silently inside a goroutine.
func TestBadPprofAddr(t *testing.T) {
	if err := run([]string{"-list", "-pprof", "127.0.0.1:notaport"}); err == nil {
		t.Fatal("nonsense pprof address accepted")
	}
}

// TestPprofCleanShutdown checks a good -pprof address binds and the server
// comes down with the run (a second run on the same flag set must not see
// the port still held).
func TestPprofCleanShutdown(t *testing.T) {
	if err := run([]string{"-list", "-pprof", "127.0.0.1:0"}); err != nil {
		t.Fatalf("run with pprof: %v", err)
	}
	if err := run([]string{"-list", "-pprof", "127.0.0.1:0"}); err != nil {
		t.Fatalf("second run with pprof: %v", err)
	}
}
