package main

import "testing"

func TestListFlag(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatalf("run(-list): %v", err)
	}
}

func TestUnknownExperiment(t *testing.T) {
	if err := run([]string{"-exp", "fig99"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestBadFlag(t *testing.T) {
	if err := run([]string{"-nope"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestTable5Experiment(t *testing.T) {
	if err := run([]string{"-exp", "table5"}); err != nil {
		t.Fatalf("run(table5): %v", err)
	}
}

func TestFig3Experiment(t *testing.T) {
	if err := run([]string{"-exp", "fig3"}); err != nil {
		t.Fatalf("run(fig3): %v", err)
	}
}

func TestExperimentNamesUnique(t *testing.T) {
	seen := make(map[string]bool)
	for _, e := range allExperiments() {
		if seen[e.name] {
			t.Fatalf("duplicate experiment %q", e.name)
		}
		seen[e.name] = true
		if e.desc == "" || e.run == nil {
			t.Fatalf("experiment %q incomplete", e.name)
		}
	}
}
