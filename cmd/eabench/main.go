// Command eabench regenerates every table and figure of the paper's
// evaluation (Section 5) on the simulated testbed.
//
// Usage:
//
//	eabench -exp all
//	eabench -exp all -parallel 8
//	eabench -exp fig8
//	eabench -exp fleet -fleet-users 300
//	eabench -list
//
// Experiments fan their independent simulations out on a bounded worker pool
// sized by -parallel (default: GOMAXPROCS); output is byte-identical at any
// worker count.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/exec"
	"sort"
	"strconv"
	"strings"
	"sync"
	"text/tabwriter"
	"time"

	"eabrowse/internal/channel"
	"eabrowse/internal/experiments"
	"eabrowse/internal/faults"
	"eabrowse/internal/features"
	"eabrowse/internal/obs"
	"eabrowse/internal/report"
	"eabrowse/internal/rrc"
	"eabrowse/internal/runner"
)

type experiment struct {
	name string
	desc string
	// heavy experiments run only when named explicitly, never under 'all'.
	heavy bool
	run   func(*printer) error
}

// benchOptions carries the flag-derived knobs into the experiment registry.
type benchOptions struct {
	profile faults.Config
	maxLoss float64
	// timing includes live wall-clock measurements in the output (Table 7's
	// Go column). Off by default so output is deterministic run to run.
	timing bool
	fleet  experiments.FleetConfig
	// fleetProcs > 1 splits the fleet's shard range across that many worker
	// processes (re-execs of this binary with -fleet-worker). radio and
	// parallel echo their flags so the coordinator can rebuild a worker's
	// argument list exactly.
	fleetProcs int
	radio      string
	parallel   int
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "eabench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("eabench", flag.ContinueOnError)
	exp := fs.String("exp", "all", "experiment id (fig1..fig16, table4..table7, ablation, chaos, fleet) or 'all'")
	list := fs.Bool("list", false, "list experiments and exit")
	parallel := fs.Int("parallel", 0, "worker-pool size for parallel simulation (<= 0: GOMAXPROCS); results are identical at any setting")
	traceOut := fs.String("trace", "", "write the merged simulated-time event trace (JSON lines) to this file")
	metricsOut := fs.String("metrics", "", "write the counters/histograms/ledger snapshot (JSON) to this file")
	pprofAddr := fs.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060) while experiments run")
	radio := fs.String("radio", "", "radio profile the simulated phones run: "+strings.Join(rrc.Profiles(), ", ")+" (default umts; experiments that measure the UMTS machine itself — fig1, fig3, table5, timers, ablation — pin it explicitly and are unaffected)")

	opts := benchOptions{
		profile: experiments.DefaultChaosProfile(),
		fleet:   experiments.DefaultFleetConfig(),
	}
	fs.BoolVar(&opts.timing, "timing", false, "include live wall-clock measurements (makes output nondeterministic)")
	fs.IntVar(&opts.fleet.Users, "fleet-users", opts.fleet.Users, "fleet: number of simulated phones")
	fs.Float64Var(&opts.fleet.HoursPerUser, "fleet-hours", opts.fleet.HoursPerUser, "fleet: browsing hours replayed per phone")
	fs.Int64Var(&opts.fleet.Seed, "fleet-seed", opts.fleet.Seed, "fleet: trace seed")
	fs.StringVar(&opts.fleet.RadioMix, "fleet-radio-mix", "", "fleet: mixed-RAN population as name:weight pairs, e.g. \"umts:0.6,lte:0.4\" (default: the -radio profile fleet-wide)")
	fs.StringVar(&opts.fleet.Channel, "fleet-channel", "", "fleet: channel scenario every phone browses through: "+strings.Join(channel.Scenarios(), ", ")+" (default: fixed ideal link)")
	fs.StringVar(&opts.fleet.Policy, "fleet-policy", "", "fleet: energy-aware release rule, static or adaptive (default static)")
	fs.IntVar(&opts.fleetProcs, "fleet-procs", 1, "fleet: worker processes the shard range is split across (results are byte-identical at any setting)")
	fleetWorker := fs.String("fleet-worker", "", "internal: compute fleet shards lo:hi and write the binary shard stream to stdout")

	// Fault-injection profile for the chaos experiment. Loss is the swept
	// variable (0 up to -fault-loss); the other rates form the constant
	// background impairment mix.
	fs.Float64Var(&opts.maxLoss, "fault-loss", 0.30, "chaos: maximum packet-loss rate of the sweep, [0, 1)")
	fs.Int64Var(&opts.profile.Seed, "fault-seed", opts.profile.Seed, "chaos: fault-injection seed (equal seeds give byte-identical sweeps)")
	fs.Float64Var(&opts.profile.StallRate, "fault-stall", opts.profile.StallRate, "chaos: per-attempt transfer stall probability")
	fs.Float64Var(&opts.profile.FailRate, "fault-fail", opts.profile.FailRate, "chaos: per-attempt hard transfer failure probability")
	fs.Float64Var(&opts.profile.RILTimeoutRate, "fault-ril-timeout", opts.profile.RILTimeoutRate, "chaos: probability a RIL response is lost")
	fs.Float64Var(&opts.profile.RILErrorRate, "fault-ril-error", opts.profile.RILErrorRate, "chaos: probability the RIL daemon rejects an operation")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *radio != "" {
		if err := experiments.SetDefaultRadioProfile(*radio); err != nil {
			return err
		}
	}
	runner.SetWorkers(*parallel)
	opts.radio = *radio
	opts.parallel = *parallel

	if *fleetWorker != "" {
		// Fleet worker mode: compute the assigned shard range and stream the
		// accumulators to stdout. Nothing else may write to stdout here — the
		// coordinator parses it as the binary shard protocol.
		lo, hi, err := parseShardRange(*fleetWorker)
		if err != nil {
			return err
		}
		outs, err := experiments.RunFleetShards(opts.fleet, lo, hi)
		if err != nil {
			return err
		}
		return experiments.WriteFleetShards(os.Stdout, outs)
	}

	// Tracing and metrics share one process-wide collector; experiments
	// register their sessions under deterministic keys and the merged output
	// is serialized in key order, so the files are byte-identical at any
	// -parallel setting.
	var collector *obs.Collector
	if *traceOut != "" || *metricsOut != "" {
		collector = obs.Enable()
	}
	if *pprofAddr != "" {
		// Label pool workers so profiles attribute samples to them, and serve
		// the standard pprof endpoints for the lifetime of the run. Binding
		// happens synchronously so a bad address fails the run immediately
		// instead of vanishing inside a goroutine; the server is shut down
		// once the experiments finish.
		runner.SetProfileLabels(true)
		ln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			return fmt.Errorf("pprof: listen on %s: %w", *pprofAddr, err)
		}
		// The blank net/http/pprof import registers on DefaultServeMux.
		pprofSrv := &http.Server{Handler: http.DefaultServeMux}
		go func() {
			if serr := pprofSrv.Serve(ln); serr != nil && serr != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "eabench: pprof server:", serr)
			}
		}()
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			_ = pprofSrv.Shutdown(ctx)
		}()
	}

	exps := allExperiments(opts)
	if *list {
		for _, e := range exps {
			note := ""
			if e.heavy {
				note = " (not in 'all')"
			}
			fmt.Printf("%-8s %s%s\n", e.name, e.desc, note)
		}
		return nil
	}

	if err := runSelected(*exp, exps); err != nil {
		return err
	}
	return writeObsOutputs(collector, *traceOut, *metricsOut)
}

// runSelected runs one named experiment, or all non-heavy ones.
func runSelected(name string, exps []experiment) error {
	if name == "all" {
		return runAll(os.Stdout, os.Stderr, exps)
	}
	for _, e := range exps {
		if e.name == name {
			p := &printer{w: os.Stdout, timing: os.Stderr}
			p.header(e.name, e.desc)
			return e.run(p)
		}
	}
	names := make([]string, 0, len(exps))
	for _, e := range exps {
		names = append(names, e.name)
	}
	sort.Strings(names)
	return fmt.Errorf("unknown experiment %q (have: %s)", name, strings.Join(names, ", "))
}

// writeObsOutputs serializes the collector after the experiments finish.
func writeObsOutputs(c *obs.Collector, tracePath, metricsPath string) error {
	if c == nil {
		return nil
	}
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return err
		}
		// The run header names the active radio profile ahead of the event
		// stream. It is written here, not by the collector, so session-level
		// trace files (and their committed goldens) keep their exact bytes.
		if _, err := fmt.Fprintf(f, "{\"kind\":\"run-header\",\"radio_profile\":%q}\n",
			experiments.DefaultRadioSpec().Profile()); err != nil {
			f.Close()
			return fmt.Errorf("write trace: %w", err)
		}
		if err := c.WriteTrace(f); err != nil {
			f.Close()
			return fmt.Errorf("write trace: %w", err)
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if metricsPath != "" {
		f, err := os.Create(metricsPath)
		if err != nil {
			return err
		}
		if err := c.WriteMetrics(f); err != nil {
			f.Close()
			return fmt.Errorf("write metrics: %w", err)
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

// expOutput is one experiment's rendered report plus its wall-clock side
// channel, kept separate so the deterministic report and the nondeterministic
// timing lines can go to different streams.
type expOutput struct {
	report []byte
	timing []byte
}

// runAll executes every non-heavy experiment on the worker pool, each
// rendering into its own buffers, then writes the buffers in registry order —
// so the report reads identically no matter which experiment finished first.
// Reports go to w; wall-clock timing lines (present only with -timing) go to
// timingW.
func runAll(w, timingW io.Writer, exps []experiment) error {
	active := make([]experiment, 0, len(exps))
	for _, e := range exps {
		if !e.heavy {
			active = append(active, e)
		}
	}
	outs, err := runner.Collect(len(active), func(i int) (expOutput, error) {
		var buf, tbuf bytes.Buffer
		p := &printer{w: &buf, timing: &tbuf}
		p.header(active[i].name, active[i].desc)
		if err := active[i].run(p); err != nil {
			return expOutput{}, fmt.Errorf("%s: %w", active[i].name, err)
		}
		return expOutput{report: buf.Bytes(), timing: tbuf.Bytes()}, nil
	})
	if err != nil {
		return err
	}
	for _, o := range outs {
		if _, err := w.Write(o.report); err != nil {
			return err
		}
		if len(o.timing) > 0 {
			if _, err := timingW.Write(o.timing); err != nil {
				return err
			}
		}
	}
	return nil
}

func allExperiments(opts benchOptions) []experiment {
	return []experiment{
		{name: "fig1", desc: "power level of the radio states over time", run: runFig1},
		{name: "fig3", desc: "original vs intuitive energy by transfer interval (crossover)", run: runFig3},
		{name: "fig4", desc: "traffic shape: browser load vs raw socket download", run: runFig4},
		{name: "table4", desc: "Pearson correlation of reading time vs features", run: runTable4},
		{name: "table5", desc: "power consumption per radio state", run: runTable5},
		{name: "fig7", desc: "cumulative distribution of reading time", run: runFig7},
		{name: "fig8", desc: "data transmission time, both benchmarks + named pages", run: runFig8},
		{name: "fig9", desc: "power trace loading espn.go.com/sports", run: runFig9},
		{name: "fig10", desc: "energy to open page + 20 s reading", run: runFig10},
		{name: "fig11", desc: "network capacity (M/G/200 session dropping)", run: runFig11},
		{name: "fig12", desc: "intermediate/final display timings (espn)", run: runFig12},
		{name: "fig14", desc: "average screen display times", run: runFig14},
		{name: "fig15", desc: "prediction accuracy with/without interest threshold", run: runFig15},
		{name: "fig16", desc: "power and delay savings of the six cases", run: runFig16},
		{name: "table7", desc: "prediction cost vs number of decision trees",
			run: func(p *printer) error { return runTable7(p, opts.timing) }},
		{name: "reorder", desc: "reordering+dormancy savings per radio backend (umts, lte, nr)", run: runReorder},
		{name: "ablation", desc: "design-choice ablations (guard, timers, reordering-only)", run: runAblation},
		{name: "ablation-pred", desc: "predictor ablations (GBRT vs linear, M, J, alpha)", run: runPredictorAblation},
		{name: "timers", desc: "T1/T2 timer sweep on the original browser vs energy-aware", run: runTimerSweep},
		{name: "chaos", desc: "energy/load time vs loss rate under injected faults (see -fault-* flags)",
			run: func(p *printer) error { return runChaos(p, opts.profile, opts.maxLoss) }},
		{name: "fleet", desc: "concurrent multi-user fleet replay with Algorithm 2 (see -fleet-* flags)",
			heavy: true,
			run:   func(p *printer) error { return runFleet(p, opts) }},
		{name: "scenarios", desc: "scenario×policy matrix: static vs adaptive vs oracle under time-varying channels",
			heavy: true,
			run:   runScenarios},
	}
}

type printer struct {
	// w receives the deterministic report.
	w io.Writer
	// timing receives live wall-clock lines, which vary run to run and so
	// must never mix into w; nil discards them.
	timing io.Writer
}

func (p *printer) header(name, desc string) {
	fmt.Fprintf(p.w, "\n=== %s — %s ===\n", name, desc)
}

// timingf writes a wall-clock measurement line to the timing stream.
func (p *printer) timingf(format string, a ...any) {
	if p.timing != nil {
		fmt.Fprintf(p.timing, format, a...)
	}
}

func (p *printer) table(write func(w *tabwriter.Writer)) {
	tw := tabwriter.NewWriter(p.w, 0, 4, 2, ' ', 0)
	write(tw)
	tw.Flush()
}

func runFig1(p *printer) error {
	res, err := experiments.Fig1()
	if err != nil {
		return err
	}
	fmt.Fprintf(p.w, "samples: %d at 0.25 s, mean power %.2f W\n", len(res.Samples), res.MeanPowerW)
	fmt.Fprintln(p.w, "time(s)  power(W)")
	for i, s := range res.Samples {
		if i%4 != 0 { // print at 1 s granularity
			continue
		}
		fmt.Fprintf(p.w, "%6.1f  %s %.2f\n", s.At.Seconds(), bar(s.Watts, 2.0, 40), s.Watts)
	}
	return nil
}

func runFig3(p *printer) error {
	res, err := experiments.Fig3()
	if err != nil {
		return err
	}
	p.table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "interval(s)\toriginal(J)\tintuitive(J)\tsaving(J)")
		for _, pt := range res.Points {
			fmt.Fprintf(w, "%.0f\t%.2f\t%.2f\t%+.2f\n", pt.IntervalS, pt.OriginalJ, pt.IntuitiveJ, pt.SavingJ)
		}
	})
	fmt.Fprintf(p.w, "crossover: intuitive starts winning at %.0f s (paper: 9 s)\n", res.CrossoverS)
	return nil
}

func runFig4(p *printer) error {
	res, err := experiments.Fig4()
	if err != nil {
		return err
	}
	fmt.Fprintf(p.w, "page bytes: %d KB\n", res.TotalKB)
	fmt.Fprintf(p.w, "browser load finished at %.1f s; raw socket download at %.1f s (paper: ~47 s vs ~8 s)\n",
		res.BrowserTotalS, res.BulkTotalS)
	fmt.Fprintln(p.w, "browser traffic (KB per 0.5 s bin):")
	printBins(p, res.BrowserBins)
	fmt.Fprintln(p.w, "socket download traffic:")
	printBins(p, res.BulkBins)
	return nil
}

func printBins(p *printer, bins []experiments.Fig4Bin) {
	for i, b := range bins {
		if i%4 != 0 {
			continue
		}
		// Aggregate 2 s of bins per printed row.
		kb := 0.0
		for j := i; j < i+4 && j < len(bins); j++ {
			kb += bins[j].TrafficKB
		}
		fmt.Fprintf(p.w, "%6.1fs %s %.0f KB\n", b.StartS, bar(kb, 200, 40), kb)
	}
}

func runTable4(p *printer) error {
	res, err := experiments.Table4()
	if err != nil {
		return err
	}
	p.table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "feature\tPearson r\tSpearman rho")
		for i, name := range res.Names {
			fmt.Fprintf(w, "%s\t%+.4f\t%+.4f\n", name, res.Correlations[i], res.Spearman[i])
		}
	})
	fmt.Fprintf(p.w, "max |r| = %.4f — no notable correlation (paper: all <= 0.067)\n", res.MaxAbs)
	return nil
}

func runTable5(p *printer) error {
	p.table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "state\tpower (W)")
		for _, row := range experiments.Table5() {
			fmt.Fprintf(w, "%s\t%.2f\n", row.State, row.PowerW)
		}
	})
	return nil
}

func runFig7(p *printer) error {
	res, err := experiments.Fig7()
	if err != nil {
		return err
	}
	fmt.Fprintf(p.w, "visits: %d\n", res.Visits)
	fmt.Fprintf(p.w, "P(reading < 2 s)  = %5.1f%%  (paper: 30%%)\n", res.Under2Pct)
	fmt.Fprintf(p.w, "P(reading < 9 s)  = %5.1f%%  (paper: 53%%)\n", res.Under9Pct)
	fmt.Fprintf(p.w, "P(reading < 20 s) = %5.1f%%  (paper: 68%%)\n", res.Under20Pct)
	for _, pt := range res.CurvePoints {
		if int(pt.Seconds)%4 != 0 {
			continue
		}
		fmt.Fprintf(p.w, "%4.0fs %s %.0f%%\n", pt.Seconds, bar(pt.CumPct, 100, 40), pt.CumPct)
	}
	return nil
}

func runFig8(p *printer) error {
	res, err := experiments.Fig8()
	if err != nil {
		return err
	}
	p.table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "benchmark\torig trans(s)\tEA trans(s)\tsaving\torig total(s)\tEA total(s)\tsaving")
		rows := []*experiments.BenchComparison{res.Mobile, res.Full, res.MCNN, res.MotorsEbay}
		for _, c := range rows {
			fmt.Fprintf(w, "%s\t%.1f\t%.1f\t%.1f%%\t%.1f\t%.1f\t%.1f%%\n",
				c.Label, c.Original.TransmissionS, c.Aware.TransmissionS, c.TransmissionSavingPct(),
				c.Original.TotalS, c.Aware.TotalS, c.TotalSavingPct())
		}
	})
	fmt.Fprintln(p.w, "paper: mobile -15% trans / -2.5% total; full -27% trans / -17% total; m.cnn -15%; ebay -31%")
	return nil
}

func runFig9(p *printer) error {
	res, err := experiments.Fig9()
	if err != nil {
		return err
	}
	fmt.Fprintf(p.w, "original: transmission ends %.1f s;  energy-aware: transmission ends %.1f s, dormant at %.1f s\n",
		res.OrigTransmissionS, res.AwareTransmissionS, res.AwareDormantS)
	fmt.Fprintln(p.w, "time  original              energy-aware (W)")
	n := len(res.Original)
	if len(res.Aware) > n {
		n = len(res.Aware)
	}
	for i := 0; i < n; i += 8 { // 2 s granularity
		var po, pa float64
		if i < len(res.Original) {
			po = res.Original[i].Watts
		}
		if i < len(res.Aware) {
			pa = res.Aware[i].Watts
		}
		fmt.Fprintf(p.w, "%5.1fs %s %.2f | %s %.2f\n",
			float64(i)*0.25, bar(po, 2, 20), po, bar(pa, 2, 20), pa)
	}
	return nil
}

func runFig10(p *printer) error {
	res, err := experiments.Fig10()
	if err != nil {
		return err
	}
	p.table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "benchmark\toriginal(J)\tenergy-aware(J)\tsaving\torig trans/layout/tail(J)\tEA trans/layout/tail(J)")
		rows := []*experiments.BenchComparison{res.Mobile, res.Full, res.MCNN, res.ESPN}
		for _, c := range rows {
			fmt.Fprintf(w, "%s\t%.1f\t%.1f\t%.1f%%\t%s\t%s\n",
				c.Label, c.Original.EnergyWithReadingJ, c.Aware.EnergyWithReadingJ, c.EnergySavingPct(),
				attribution(&c.Original), attribution(&c.Aware))
		}
	})
	fmt.Fprintln(p.w, "paper: mobile -35.7%, full -30.8%, m.cnn -35.5%, espn -43.6% (>30% headline)")
	fmt.Fprintln(p.w, "attribution: energy while data moved / during deferred layout / after final display (ledger phases)")
	return nil
}

func runFig11(p *printer) error {
	res, err := experiments.Fig11()
	if err != nil {
		return err
	}
	for _, b := range []*experiments.Fig11Bench{res.Mobile, res.Full} {
		fmt.Fprintf(p.w, "%s:\n", b.Label)
		p.table(func(w *tabwriter.Writer) {
			fmt.Fprintln(w, "users\toriginal drop%\tenergy-aware drop%")
			for i, u := range b.Original.Users {
				fmt.Fprintf(w, "%d\t%.2f\t%.2f\n", u, b.Original.DropPct[i], b.Aware.DropPct[i])
			}
		})
		fmt.Fprintf(p.w, "users supported at 2%% dropping: original %d, energy-aware %d (+%.1f%%)\n",
			b.Original.SupportedAt2Pct, b.Aware.SupportedAt2Pct, b.CapacityGainPct)
	}
	fmt.Fprintln(p.w, "paper: +14.3% (mobile), +19.6% (full)")
	return nil
}

func runFig12(p *printer) error {
	res, err := experiments.Fig12()
	if err != nil {
		return err
	}
	fmt.Fprintf(p.w, "intermediate display: original %.1f s vs energy-aware %.1f s (%.1f s earlier; paper: 17.6 vs 7.0)\n",
		res.OrigFirstDisplayS, res.AwareFirstDisplayS, res.FirstDisplayGainS)
	fmt.Fprintf(p.w, "final display:        original %.1f s vs energy-aware %.1f s (%.1f s earlier; paper: 34.5 vs 28.6)\n",
		res.OrigFinalDisplayS, res.AwareFinalDisplayS, res.FinalDisplayGainS)
	return nil
}

func runFig14(p *printer) error {
	res, err := experiments.Fig14()
	if err != nil {
		return err
	}
	p.table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "benchmark\torig first(s)\tEA first(s)\tsaving\torig final(s)\tEA final(s)\tsaving")
		for _, c := range []*experiments.BenchComparison{res.Mobile, res.Full} {
			finalSaving := c.TotalSavingPct()
			fmt.Fprintf(w, "%s\t%.1f\t%.1f\t%.1f%%\t%.1f\t%.1f\t%.1f%%\n",
				c.Label, c.Original.FirstDisplayS, c.Aware.FirstDisplayS, c.FirstDisplaySavingPct(),
				c.Original.TotalS, c.Aware.TotalS, finalSaving)
		}
	})
	fmt.Fprintln(p.w, "paper: full benchmark first display -45.5%, final display -16.8%")
	return nil
}

func runFig15(p *printer) error {
	res, err := experiments.Fig15()
	if err != nil {
		return err
	}
	p.table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "threshold\twithout interest\twith interest\tgain")
		fmt.Fprintf(w, "Tp = 9 s\t%.1f%%\t%.1f%%\t%+.1f\n", res.WithoutTp, res.WithTp, res.GainTp)
		fmt.Fprintf(w, "Td = 20 s\t%.1f%%\t%.1f%%\t%+.1f\n", res.WithoutTd, res.WithTd, res.GainTd)
	})
	fmt.Fprintln(p.w, "paper: interest threshold adds at least 10 points")
	return nil
}

func runFig16(p *printer) error {
	res, err := experiments.Fig16()
	if err != nil {
		return err
	}
	p.table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "case\tenergy(J)\tdelay(s)\tpower saving\tdelay saving\tswitches")
		for _, c := range res.Cases {
			fmt.Fprintf(w, "%s\t%.0f\t%.0f\t%.2f%%\t%.2f%%\t%d\n",
				c.Case, c.EnergyJ, c.DelayS, c.PowerSavingPct, c.DelaySavingPct, c.Switches)
		}
	})
	fmt.Fprintln(p.w, "paper shape: Orig Always-off worst (delay negative), EA Always-off ~9.2% delay,")
	fmt.Fprintln(p.w, "Accurate-9 best power, Accurate-20 best delay (~13.6%), Predict-* slightly below Accurate-*")
	return nil
}

func runReorder(p *printer) error {
	res, err := experiments.Reorder()
	if err != nil {
		return err
	}
	fmt.Fprintf(p.w, "page: %s, reading window %v, one phone per radio backend per pipeline\n",
		res.Page, experiments.Fig10ReadingTime)
	p.table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "radio\toriginal(J)\tenergy-aware(J)\tsaving\torig load(s)\tEA load(s)\tEA dormant in window")
		for _, r := range res.Rows {
			fmt.Fprintf(w, "%s\t%.1f\t%.1f\t%.1f%%\t%.1f\t%.1f\t%v\n",
				r.Profile, r.OriginalJ, r.AwareJ, r.SavingPct, r.OrigLoadS, r.AwareLoadS, r.AwareDormant)
		}
	})
	fmt.Fprintln(p.w, "the reordering wins on every generation; the saving shrinks as the native tail gets shorter")
	return nil
}

func runTable7(p *printer, timing bool) error {
	rows, err := experiments.Table7()
	if err != nil {
		return err
	}
	p.table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "decision trees\tphone energy (J)\tphone time (s)")
		for _, r := range rows {
			fmt.Fprintf(w, "%d\t%.3f\t%.3f\n", r.Trees, r.EnergyJ, r.TimeSeconds)
		}
	})
	if timing {
		// Wall-clock is machine- and load-dependent, so it goes to the timing
		// stream (stderr), keeping stdout byte-stable run to run.
		for _, r := range rows {
			p.timingf("table7: %d trees: Go wall time %v\n", r.Trees, r.GoWallTime.Round(10e3))
		}
	}
	fmt.Fprintln(p.w, "paper: 10000 trees -> 0.295 s, 0.177 J")
	return nil
}

func runAblation(p *printer) error {
	res, err := experiments.Ablations()
	if err != nil {
		return err
	}
	p.table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "variant\tenergy+20s read (J)\tload time (s)\tvs energy-aware default")
		for _, r := range res.Rows {
			fmt.Fprintf(w, "%s\t%.1f\t%.1f\t%+.1f%% energy\n", r.Name, r.EnergyJ, r.LoadS, r.EnergyDeltaPct)
		}
	})
	return nil
}

func runPredictorAblation(p *printer) error {
	res, err := experiments.PredictorAblation()
	if err != nil {
		return err
	}
	groups := []struct {
		title string
		rows  []experiments.PredictorAblationRow
	}{
		{"model comparison", res.Baselines},
		{"forest size M", res.Trees},
		{"leaf budget J", res.Leaves},
		{"interest threshold alpha", res.Alpha},
	}
	for _, g := range groups {
		fmt.Fprintf(p.w, "%s:\n", g.title)
		p.table(func(w *tabwriter.Writer) {
			fmt.Fprintln(w, "variant\taccuracy Tp=9s\taccuracy Td=20s")
			for _, r := range g.rows {
				fmt.Fprintf(w, "%s\t%.1f%%\t%.1f%%\n", r.Name, r.TpPct, r.TdPct)
			}
		})
	}
	fmt.Fprintf(p.w, "personal models fitted: %d\n", res.PersonalModels)
	fmt.Fprintln(p.w, "split-gain feature importance (default model):")
	p.table(func(w *tabwriter.Writer) {
		for i, name := range features.Names {
			fmt.Fprintf(w, "%s\t%.1f%%\n", name, res.Importance[i]*100)
		}
	})
	fmt.Fprintln(p.w, "the linear baseline is what Table 4's near-zero correlations predict must fail")
	return nil
}

func runTimerSweep(p *printer) error {
	res, err := experiments.TimerSweep()
	if err != nil {
		return err
	}
	p.table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "T1\tT2\tenergy+20s read (J)\tnext-click delay (s)")
		for _, r := range res.Rows {
			fmt.Fprintf(w, "%v\t%v\t%.1f\t%.2f\n", r.T1, r.T2, r.EnergyJ, r.NextClickDelayS)
		}
	})
	fmt.Fprintf(p.w, "energy-aware pipeline (default timers): %.1f J with zero added click delay until the release\n", res.EnergyAwareJ)
	fmt.Fprintln(p.w, "the introduction's point: no timer setting reaches the reordered pipeline")
	return nil
}

func runChaos(p *printer, profile faults.Config, maxLoss float64) error {
	res, err := experiments.ChaosSweep(profile, maxLoss)
	if err != nil {
		return err
	}
	fmt.Fprintf(p.w, "pages: %d per mode per point, seed %d, reading window %v\n",
		res.Pages, res.Seed, experiments.ChaosReadingTime)
	p.table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "loss%\torig(J)\tEA(J)\tsaving\torig load(s)\tEA load(s)\tEA retries\tEA lost objs\tEA dorm fails\tEA degraded")
		for i := range res.Points {
			pt := &res.Points[i]
			fmt.Fprintf(w, "%.0f\t%.1f\t%.1f\t%.1f%%\t%.1f\t%.1f\t%d\t%d\t%d\t%d/%d\n",
				pt.LossPct, pt.Original.EnergyJ, pt.Aware.EnergyJ, pt.EnergySavingPct(),
				pt.Original.LoadS, pt.Aware.LoadS,
				pt.Aware.FetchRetries+pt.Aware.LinkRetries, pt.Aware.FailedObjects,
				pt.Aware.DormancyFailures, pt.Aware.Degraded, pt.Aware.Completed)
		}
	})
	fmt.Fprintln(p.w, "every load completes at every loss rate — degraded, never hung (the background stall/fail/RIL mix applies at all points)")
	return nil
}

func runScenarios(p *printer) error {
	res, err := experiments.Scenarios()
	if err != nil {
		return err
	}
	fmt.Fprintf(p.w, "radio: %s — each scenario replayed under the paper's static thresholds,\n", res.Radio)
	fmt.Fprintln(p.w, "the per-user adaptive estimator, and the counterfactual oracle lower bound")
	p.table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "scenario\tpolicy\tenergy (J)\tdelay (s)\tsaving vs static\tswitches\tpredictions")
		for _, r := range res.Rows {
			fmt.Fprintf(w, "%s\t%s\t%.1f\t%.1f\t%+.1f%%\t%d\t%d\n",
				r.Scenario, r.Policy, r.EnergyJ, r.DelayS, r.SavingPct, r.Switches, r.Predictions)
		}
	})
	fmt.Fprintln(p.w, "invariant: oracle <= adaptive <= static on every scenario (the golden matrix pins the bytes)")
	return nil
}

// parseShardRange parses a -fleet-worker "lo:hi" shard range.
func parseShardRange(s string) (lo, hi int, err error) {
	c := strings.IndexByte(s, ':')
	if c < 0 {
		return 0, 0, fmt.Errorf("fleet-worker: range %q is not lo:hi", s)
	}
	if lo, err = strconv.Atoi(s[:c]); err != nil {
		return 0, 0, fmt.Errorf("fleet-worker: range %q: %w", s, err)
	}
	if hi, err = strconv.Atoi(s[c+1:]); err != nil {
		return 0, 0, fmt.Errorf("fleet-worker: range %q: %w", s, err)
	}
	return lo, hi, nil
}

// fleetWorkerArgs rebuilds the argument list a fleet worker process needs to
// replay shards [lo, hi) of exactly the coordinator's fleet.
func fleetWorkerArgs(opts benchOptions, lo, hi int) []string {
	cfg := opts.fleet
	args := []string{
		"-fleet-worker", strconv.Itoa(lo) + ":" + strconv.Itoa(hi),
		"-fleet-users", strconv.Itoa(cfg.Users),
		"-fleet-hours", strconv.FormatFloat(cfg.HoursPerUser, 'g', -1, 64),
		"-fleet-seed", strconv.FormatInt(cfg.Seed, 10),
	}
	if cfg.RadioMix != "" {
		args = append(args, "-fleet-radio-mix", cfg.RadioMix)
	}
	if cfg.Channel != "" {
		args = append(args, "-fleet-channel", cfg.Channel)
	}
	if cfg.Policy != "" {
		args = append(args, "-fleet-policy", cfg.Policy)
	}
	if opts.radio != "" {
		args = append(args, "-radio", opts.radio)
	}
	if opts.parallel != 0 {
		args = append(args, "-parallel", strconv.Itoa(opts.parallel))
	}
	return args
}

func runFleet(p *printer, opts benchOptions) error {
	cfg := opts.fleet
	if opts.timing {
		var progressMu sync.Mutex
		last := -1
		cfg.Progress = func(done, total int) {
			progressMu.Lock()
			defer progressMu.Unlock()
			// Report at most once per percent so a million-user fleet does
			// not drown stderr in shard lines.
			pct := done * 100 / total
			if pct != last || done == total {
				last = pct
				p.timingf("fleet: %d/%d shards (%d%%)\n", done, total, pct)
			}
		}
	}
	var res *experiments.FleetResult
	var err error
	if opts.fleetProcs > 1 {
		self, serr := os.Executable()
		if serr != nil {
			return fmt.Errorf("fleet: locate own binary: %w", serr)
		}
		res, err = experiments.FleetMultiProc(cfg, opts.fleetProcs, func(lo, hi int) (*exec.Cmd, error) {
			cmd := exec.Command(self, fleetWorkerArgs(opts, lo, hi)...)
			cmd.Stderr = os.Stderr
			return cmd, nil
		})
	} else {
		res, err = experiments.Fleet(cfg)
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(p.w, "fleet: %d phones, %.2f h of browsing each, %d visits replayed per pipeline\n",
		res.Users, res.TraceHours, res.Visits)
	if res.Radio != "umts" {
		fmt.Fprintf(p.w, "radio: %s\n", res.Radio)
	}
	if res.Channel != "" || res.Policy != "static" {
		ch := res.Channel
		if ch == "" {
			ch = "ideal"
		}
		fmt.Fprintf(p.w, "channel: %s, policy: %s\n", ch, res.Policy)
	}
	p.table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "pipeline\ttotal energy (J)\tper phone (J)\tvisit J p50\tp95\tp99\tmean trans (s)\tdrop% at fleet\tusers at 2% drop")
		for _, s := range []*experiments.FleetModeStats{&res.Original, &res.Aware} {
			fmt.Fprintf(w, "%v\t%.0f\t%.1f\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\t%d\n",
				s.Mode, s.EnergyJ, s.MeanEnergyPerUserJ,
				s.VisitEnergyP50J, s.VisitEnergyP95J, s.VisitEnergyP99J,
				s.MeanTransmissionS, s.DropPctAtFleet, s.SupportedAt2Pct)
		}
	})
	fmt.Fprintf(p.w, "energy-aware: %d forced releases, %d predictions (%.2f J prediction cost)\n",
		res.Aware.Switches, res.Aware.Predictions, res.Aware.PredictionEnergyJ)
	fmt.Fprintf(p.w, "fleet-wide energy saving %.1f%%, capacity gain at 2%% dropping %+.1f%%\n",
		res.EnergySavingPct, res.CapacityGainPct)
	return nil
}

// bar renders a crude horizontal bar for terminal plots.
func bar(v, maxV float64, width int) string {
	return report.Bar(v, maxV, width)
}

// attribution renders a pipeline's ledger split as "trans/layout/tail" joules.
func attribution(t *experiments.PipelineTiming) string {
	return fmt.Sprintf("%.1f/%.1f/%.1f", t.TransmissionJ, t.LayoutJ, t.TailJ)
}
