module eabrowse

go 1.22
