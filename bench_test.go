package eabrowse

// The benchmark harness: one testing.B benchmark per table and figure of
// the paper's evaluation (Section 5). Each benchmark regenerates its
// experiment and reports the headline quantity as a custom metric, so
// `go test -bench=. -benchmem` reproduces the whole results section.
//
// Paper-vs-measured values are tabulated in EXPERIMENTS.md.

import (
	"math/rand"
	"testing"
	"time"

	"eabrowse/internal/browser"
	"eabrowse/internal/experiments"
	"eabrowse/internal/gbrt"
	"eabrowse/internal/policy"
	"eabrowse/internal/predictor"
	"eabrowse/internal/runner"
	"eabrowse/internal/trace"
	"eabrowse/internal/webpage"
)

// BenchmarkFig1StatePowerTrace samples the radio walking IDLE→DCH→FACH→IDLE.
func BenchmarkFig1StatePowerTrace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig1()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.MeanPowerW, "meanW")
			b.ReportMetric(float64(len(res.Samples)), "samples")
		}
	}
}

// BenchmarkFig3IntuitiveCrossover sweeps the transfer interval and finds
// where immediate release starts paying (paper: 9 s).
func BenchmarkFig3IntuitiveCrossover(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig3()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.CrossoverS, "crossover_s")
		}
	}
}

// BenchmarkFig4TrafficShape compares browser vs socket transfer shapes
// (paper: ~47 s vs ~8 s for 760 KB).
func BenchmarkFig4TrafficShape(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig4()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.BrowserTotalS, "browser_s")
			b.ReportMetric(res.BulkTotalS, "socket_s")
		}
	}
}

// BenchmarkFig7ReadingTimeCDF synthesizes the trace and reports the landmark
// quantiles (paper: 30% < 2 s, 53% < 9 s, 68% < 20 s).
func BenchmarkFig7ReadingTimeCDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig7()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.Under2Pct, "under2_pct")
			b.ReportMetric(res.Under9Pct, "under9_pct")
			b.ReportMetric(res.Under20Pct, "under20_pct")
		}
	}
}

// BenchmarkFig8TransmissionTime measures both pipelines over both
// benchmarks (paper: -15% mobile, -27% full transmission time).
func BenchmarkFig8TransmissionTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig8()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.Mobile.TransmissionSavingPct(), "mobile_trans_saving_pct")
			b.ReportMetric(res.Full.TransmissionSavingPct(), "full_trans_saving_pct")
			b.ReportMetric(res.Full.TotalSavingPct(), "full_total_saving_pct")
		}
	}
}

// BenchmarkFig9PowerTrace samples both pipelines loading espn sports.
func BenchmarkFig9PowerTrace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig9()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.OrigTransmissionS, "orig_trans_s")
			b.ReportMetric(res.AwareTransmissionS, "aware_trans_s")
		}
	}
}

// BenchmarkFig10Energy measures open-page + 20 s reading energy
// (paper: >30% saving).
func BenchmarkFig10Energy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig10()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.Mobile.EnergySavingPct(), "mobile_saving_pct")
			b.ReportMetric(res.Full.EnergySavingPct(), "full_saving_pct")
		}
	}
}

// BenchmarkFig11Capacity runs the Erlang-loss capacity comparison
// (paper: +14.3% mobile, +19.6% full users).
func BenchmarkFig11Capacity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig11()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.Mobile.CapacityGainPct, "mobile_gain_pct")
			b.ReportMetric(res.Full.CapacityGainPct, "full_gain_pct")
		}
	}
}

// BenchmarkFig12DisplayTimings measures intermediate/final display times on
// espn (paper: 7 s vs 17.6 s intermediate; 28.6 s vs 34.5 s final).
func BenchmarkFig12DisplayTimings(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig12()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.FirstDisplayGainS, "first_gain_s")
			b.ReportMetric(res.FinalDisplayGainS, "final_gain_s")
		}
	}
}

// BenchmarkFig14DisplayTime averages display times over both benchmarks
// (paper: first display -45.5%, final -16.8% on the full benchmark).
func BenchmarkFig14DisplayTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig14()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.Full.FirstDisplaySavingPct(), "full_first_saving_pct")
			b.ReportMetric(res.Full.TotalSavingPct(), "full_final_saving_pct")
		}
	}
}

// BenchmarkFig15PredictionAccuracy trains and evaluates the GBRT with and
// without the interest threshold (paper: threshold adds >= 10 points).
func BenchmarkFig15PredictionAccuracy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig15()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.WithTp, "with_tp_pct")
			b.ReportMetric(res.WithoutTp, "without_tp_pct")
			b.ReportMetric(res.GainTp, "gain_tp_points")
		}
	}
}

// BenchmarkFig16SixCases replays the trace under all Table 6 strategies.
func BenchmarkFig16SixCases(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig16()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, c := range res.Cases {
				switch c.Case {
				case policy.CaseAccurate9:
					b.ReportMetric(c.PowerSavingPct, "accurate9_power_pct")
				case policy.CaseAccurate20:
					b.ReportMetric(c.DelaySavingPct, "accurate20_delay_pct")
				}
			}
		}
	}
}

// BenchmarkTable4Correlations computes the feature/reading-time Pearson
// matrix (paper: no notable correlation).
func BenchmarkTable4Correlations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table4()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.MaxAbs, "max_abs_r")
		}
	}
}

// BenchmarkTable7PredictionCost measures real GBRT prediction speed per
// 10,000 eight-node trees (the paper's phone took 0.295 s).
func BenchmarkTable7PredictionCost(b *testing.B) {
	xs := [][]float64{{1, 2}, {2, 1}, {3, 4}, {4, 3}, {5, 6}, {6, 5}, {7, 8}, {8, 7}}
	ys := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	model, err := gbrt.Train(xs, ys, gbrt.Config{Trees: 50, MaxLeaves: 8, Shrinkage: 0.1, MinSamplesLeaf: 1})
	if err != nil {
		b.Fatal(err)
	}
	evalsPer10k := 10000 / model.NumTrees()
	probe := []float64{2.5, 3.5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < evalsPer10k; j++ {
			if _, err := model.Predict(probe); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(gbrt.DefaultDeviceCost().PredictionTime(10000).Seconds(), "phone_s_per_10k_trees")
}

// BenchmarkPageLoadOriginal measures one full original-pipeline page load
// simulation (engineering throughput, not a paper figure).
func BenchmarkPageLoadOriginal(b *testing.B) {
	benchmarkPageLoad(b, browser.ModeOriginal)
}

// BenchmarkPageLoadEnergyAware measures one energy-aware load simulation.
func BenchmarkPageLoadEnergyAware(b *testing.B) {
	benchmarkPageLoad(b, browser.ModeEnergyAware)
}

func benchmarkPageLoad(b *testing.B, mode browser.Mode) {
	page, err := webpage.ESPNSports()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.LoadPage(page, mode, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGBRTTraining measures forest training on a trace-sized problem.
func BenchmarkGBRTTraining(b *testing.B) {
	ds, err := trace.Synthesize(trace.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	train, _, err := predictor.Split(ds.Visits, 0.3, 7)
	if err != nil {
		b.Fatal(err)
	}
	cfg := predictor.DefaultConfig()
	cfg.GBRT.Trees = 100
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := predictor.Train(train, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTraceSynthesis measures the full 40-user trace build (including
// measuring the pool pages through real loads).
func BenchmarkTraceSynthesis(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := trace.Synthesize(trace.DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblations runs the design-choice ablation sweep.
func BenchmarkAblations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Ablations()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 && len(res.Rows) > 1 {
			b.ReportMetric(res.Rows[1].EnergyDeltaPct, "reordering_only_delta_pct")
		}
	}
}

// BenchmarkPhoneAPI measures the public-API load path end to end.
func BenchmarkPhoneAPI(b *testing.B) {
	page, err := MCNNPage()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		phone, err := New(ModeEnergyAware)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := phone.LoadPage(page); err != nil {
			b.Fatal(err)
		}
		phone.Read(5 * time.Second)
	}
}

// benchmarkChaosSweep runs the chaos sweep at a fixed worker-pool size with
// the artifact cache pre-warmed, so the pair below isolates the worker pool's
// wall-clock effect. The sequential/parallel results are asserted identical —
// the determinism contract, checked where the speedup is measured.
func benchmarkChaosSweep(b *testing.B, workers int) {
	if _, err := experiments.BenchmarkPages(); err != nil {
		b.Fatal(err)
	}
	prev := runner.Workers()
	runner.SetWorkers(workers)
	defer runner.SetWorkers(prev)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.ChaosSweep(experiments.DefaultChaosProfile(), 0.05)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(res.Pages), "pages_per_mode")
		}
	}
}

// BenchmarkChaosSweepSequential is the 1-worker baseline for the speedup
// comparison tracked in-repo.
func BenchmarkChaosSweepSequential(b *testing.B) { benchmarkChaosSweep(b, 1) }

// BenchmarkChaosSweepParallel runs the same sweep at 8 workers; on a
// multi-core runner the wall-clock ratio against the sequential benchmark is
// the parallel runner's speedup (single-core runners show parity).
func BenchmarkChaosSweepParallel(b *testing.B) { benchmarkChaosSweep(b, 8) }

// BenchmarkFleetReplay replays a small fleet through both pipelines with
// Algorithm 2 driving the energy-aware phones.
func BenchmarkFleetReplay(b *testing.B) {
	cfg := experiments.FleetConfig{Users: 24, HoursPerUser: 0.05, Seed: 7}
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fleet(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.EnergySavingPct, "energy_saving_pct")
		}
	}
}

// synthGBRTData builds a deterministic synthetic regression problem of the
// given shape, mixing continuous and tie-heavy quantized columns like the
// Table 1 feature vectors do.
func synthGBRTData(n, numFeatures int) ([][]float64, []float64) {
	rng := rand.New(rand.NewSource(int64(n)*31 + int64(numFeatures)))
	xs := make([][]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		row := make([]float64, numFeatures)
		for f := range row {
			if f%2 == 0 {
				row[f] = rng.Float64() * 100
			} else {
				row[f] = float64(rng.Intn(8))
			}
		}
		xs[i] = row
		ys[i] = row[0]*0.3 + row[numFeatures-1]*2 + rng.NormFloat64()*5
	}
	return xs, ys
}

// BenchmarkGBRTTrain measures forest training across problem shapes; the
// n500_F10_M400 case is the fleet-scale workload (one per-user model of the
// 300-phone replay). Allocations are part of the tracked trajectory: the
// presorted engine must stay flat as shapes grow.
func BenchmarkGBRTTrain(b *testing.B) {
	shapes := []struct {
		name  string
		n, f  int
		trees int
	}{
		{"n200_F5_M100", 200, 5, 100},
		{"n500_F10_M400", 500, 10, 400},
		{"n2000_F10_M100", 2000, 10, 100},
	}
	for _, s := range shapes {
		b.Run(s.name, func(b *testing.B) {
			xs, ys := synthGBRTData(s.n, s.f)
			cfg := gbrt.Config{Trees: s.trees, MaxLeaves: 8, Shrinkage: 0.1, MinSamplesLeaf: 5}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m, err := gbrt.Train(xs, ys, cfg)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(float64(m.NumTrees()), "trees")
				}
			}
		})
	}
}

// BenchmarkGBRTPredictBatch compares the tree-major batch walk against the
// equivalent per-sample Predict loop on a fleet-sized evaluation batch.
func BenchmarkGBRTPredictBatch(b *testing.B) {
	xs, ys := synthGBRTData(500, 10)
	model, err := gbrt.Train(xs, ys, gbrt.Config{Trees: 400, MaxLeaves: 8, Shrinkage: 0.1, MinSamplesLeaf: 5})
	if err != nil {
		b.Fatal(err)
	}
	probes, _ := synthGBRTData(1000, 10)
	out := make([]float64, len(probes))
	b.Run("batch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := model.PredictBatch(probes, out); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("single", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for j, x := range probes {
				v, err := model.Predict(x)
				if err != nil {
					b.Fatal(err)
				}
				out[j] = v
			}
		}
	})
}
