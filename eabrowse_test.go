package eabrowse

// Public-API tests: what a downstream user of the library exercises.

import (
	"strings"
	"testing"
	"time"
)

func TestPhoneLoadsBothPipelines(t *testing.T) {
	page, err := MCNNPage()
	if err != nil {
		t.Fatalf("MCNNPage: %v", err)
	}
	energies := make(map[Mode]float64)
	for _, mode := range []Mode{ModeOriginal, ModeEnergyAware} {
		phone, err := NewPhone(mode)
		if err != nil {
			t.Fatalf("NewPhone: %v", err)
		}
		res, err := phone.LoadPage(page)
		if err != nil {
			t.Fatalf("LoadPage: %v", err)
		}
		if res.FinalDisplayAt <= 0 {
			t.Fatalf("%v: no final display", mode)
		}
		phone.Read(20 * time.Second)
		energies[mode] = phone.EnergyJ()
	}
	if energies[ModeEnergyAware] >= energies[ModeOriginal] {
		t.Fatalf("energy-aware (%.1f J) not below original (%.1f J)",
			energies[ModeEnergyAware], energies[ModeOriginal])
	}
}

func TestPhoneRadioStateVisible(t *testing.T) {
	page, err := MCNNPage()
	if err != nil {
		t.Fatalf("MCNNPage: %v", err)
	}
	phone, err := NewPhone(ModeEnergyAware)
	if err != nil {
		t.Fatalf("NewPhone: %v", err)
	}
	if phone.RadioState() != RadioIdle {
		t.Fatalf("fresh phone radio = %v, want IDLE", phone.RadioState())
	}
	if _, err := phone.LoadPage(page); err != nil {
		t.Fatalf("LoadPage: %v", err)
	}
	phone.Read(10 * time.Second)
	if phone.RadioState() != RadioIdle {
		t.Fatalf("radio = %v after energy-aware load + reading, want IDLE", phone.RadioState())
	}
}

func TestPhoneWithCustomConfig(t *testing.T) {
	page, err := MCNNPage()
	if err != nil {
		t.Fatalf("MCNNPage: %v", err)
	}
	radio := DefaultRadioConfig()
	radio.T1 = 2 * time.Second
	phone, err := NewPhoneWithConfig(ModeOriginal, radio, DefaultLinkConfig(), DefaultCostModel())
	if err != nil {
		t.Fatalf("NewPhoneWithConfig: %v", err)
	}
	if _, err := phone.LoadPage(page); err != nil {
		t.Fatalf("LoadPage: %v", err)
	}
	phone.Read(3 * time.Second)
	if phone.RadioState() != RadioFACH {
		t.Fatalf("radio = %v with T1=2s after 3s reading, want FACH", phone.RadioState())
	}
}

func TestPhoneForceRadioIdle(t *testing.T) {
	page, err := MCNNPage()
	if err != nil {
		t.Fatalf("MCNNPage: %v", err)
	}
	phone, err := NewPhone(ModeOriginal)
	if err != nil {
		t.Fatalf("NewPhone: %v", err)
	}
	if _, err := phone.LoadPage(page); err != nil {
		t.Fatalf("LoadPage: %v", err)
	}
	if err := phone.ForceRadioIdle(); err != nil {
		t.Fatalf("ForceRadioIdle: %v", err)
	}
	phone.Read(2 * time.Second)
	if phone.RadioState() != RadioIdle {
		t.Fatalf("radio = %v after forced release, want IDLE", phone.RadioState())
	}
}

func TestGeneratePageAndFeatures(t *testing.T) {
	page, err := GeneratePage(PageSpec{
		Name: "api.example.com", Seed: 1,
		TextKB: 8, Sections: 3, Images: 4, ImageKBMin: 2, ImageKBMax: 4,
		Stylesheets: 1, CSSKB: 4, CSSRules: 30,
		Scripts: 1, ScriptKB: 2, ScriptFetches: 1,
		Anchors: 3, PageHeightPX: 1000, PageWidthPX: 400,
	})
	if err != nil {
		t.Fatalf("GeneratePage: %v", err)
	}
	phone, err := NewPhone(ModeEnergyAware)
	if err != nil {
		t.Fatalf("NewPhone: %v", err)
	}
	res, err := phone.LoadPage(page)
	if err != nil {
		t.Fatalf("LoadPage: %v", err)
	}
	vec, err := ExtractFeatures(res)
	if err != nil {
		t.Fatalf("ExtractFeatures: %v", err)
	}
	if vec[2] != float64(res.Objects) {
		t.Fatalf("feature vector objects = %v, result %d", vec[2], res.Objects)
	}
}

func TestAlgorithm2Decision(t *testing.T) {
	params := DefaultPolicyParams()
	if ShouldSwitchToIdle(5*time.Second, params) {
		t.Fatal("switched for a 5 s read in delay mode")
	}
	if !ShouldSwitchToIdle(30*time.Second, params) {
		t.Fatal("did not switch for a 30 s read")
	}
}

func TestBenchmarkCorpora(t *testing.T) {
	mobile, err := MobileBenchmark()
	if err != nil {
		t.Fatalf("MobileBenchmark: %v", err)
	}
	full, err := FullBenchmark()
	if err != nil {
		t.Fatalf("FullBenchmark: %v", err)
	}
	if len(mobile) != 10 || len(full) != 10 {
		t.Fatalf("corpora sizes %d/%d, want 10/10", len(mobile), len(full))
	}
	espn, err := ESPNSports()
	if err != nil {
		t.Fatalf("ESPNSports: %v", err)
	}
	if espn.TotalBytes() < 500*1024 {
		t.Fatalf("espn is only %d bytes", espn.TotalBytes())
	}
	if _, err := BenchmarkPage("m.ebay.com"); err != nil {
		t.Fatalf("BenchmarkPage: %v", err)
	}
}

func TestTraceAndPredictorAPI(t *testing.T) {
	cfg := DefaultTraceConfig()
	cfg.Users = 6
	cfg.PoolSize = 12
	ds, err := SynthesizeTrace(cfg)
	if err != nil {
		t.Fatalf("SynthesizeTrace: %v", err)
	}
	train, test, err := SplitTrace(ds.Visits, 0.3, 1)
	if err != nil {
		t.Fatalf("SplitTrace: %v", err)
	}
	pcfg := DefaultPredictorConfig()
	pcfg.GBRT.Trees = 50
	pred, err := TrainPredictor(train, pcfg)
	if err != nil {
		t.Fatalf("TrainPredictor: %v", err)
	}
	acc, err := pred.Evaluate(test, 9, true)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if acc.Pct() < 50 {
		t.Fatalf("accuracy %.1f%% below coin flip", acc.Pct())
	}
}

func TestOptionConstructorEquivalence(t *testing.T) {
	page, err := MCNNPage()
	if err != nil {
		t.Fatalf("MCNNPage: %v", err)
	}
	radio := DefaultRadioConfig()
	radio.T1 = 2 * time.Second
	load := func(phone *Phone, err error) float64 {
		t.Helper()
		if err != nil {
			t.Fatalf("constructor: %v", err)
		}
		if _, err := phone.LoadPage(page); err != nil {
			t.Fatalf("LoadPage: %v", err)
		}
		phone.Read(10 * time.Second)
		return phone.EnergyJ()
	}
	viaOptions := load(New(ModeOriginal, WithRadioConfig(radio)))
	viaDeprecated := load(NewPhoneWithConfig(ModeOriginal, radio, DefaultLinkConfig(), DefaultCostModel()))
	if viaOptions != viaDeprecated {
		t.Errorf("New+options = %.6f J, NewPhoneWithConfig = %.6f J", viaOptions, viaDeprecated)
	}
}

func TestNewWithEngineOptions(t *testing.T) {
	page, err := MCNNPage()
	if err != nil {
		t.Fatalf("MCNNPage: %v", err)
	}
	// Reordering without auto-dormancy: radio must NOT be forced idle.
	phone, err := New(ModeEnergyAware, WithEngineOptions(WithoutAutoDormancy()))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := phone.LoadPage(page); err != nil {
		t.Fatalf("LoadPage: %v", err)
	}
	phone.Read(2 * time.Second)
	if phone.RadioState() == RadioIdle {
		t.Fatal("radio already IDLE 2 s after load despite WithoutAutoDormancy")
	}
}

func TestNewWithFaultInjector(t *testing.T) {
	page, err := MCNNPage()
	if err != nil {
		t.Fatalf("MCNNPage: %v", err)
	}
	cfg := FaultConfig{Seed: 1, LossRate: 0.05}
	phone, err := New(ModeEnergyAware, WithFaultInjector(cfg))
	if err != nil {
		t.Fatalf("New(WithFaultInjector): %v", err)
	}
	res, err := phone.LoadPage(page)
	if err != nil {
		t.Fatalf("LoadPage under faults: %v", err)
	}
	if res.FinalDisplayAt <= 0 {
		t.Fatal("no final display under fault injection")
	}
}

func TestSetParallelism(t *testing.T) {
	prev := Parallelism()
	defer SetParallelism(prev)
	SetParallelism(3)
	if got := Parallelism(); got != 3 {
		t.Fatalf("Parallelism() = %d after SetParallelism(3)", got)
	}
	SetParallelism(0)
	if got := Parallelism(); got < 1 {
		t.Fatalf("Parallelism() = %d after reset, want >= 1", got)
	}
}

func TestBenchmarkPageUnknownNameListsValid(t *testing.T) {
	_, err := BenchmarkPage("no-such-page")
	if err == nil {
		t.Fatal("BenchmarkPage accepted an unknown name")
	}
	msg := err.Error()
	for _, want := range []string{"no-such-page", "m.cnn.com", "espn.go.com/sports"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q does not mention %q", msg, want)
		}
	}
}
