// Readingtime: the paper's Section 4.3 workflow end to end — synthesize a
// 40-user browsing trace, train the GBRT reading-time predictor (with and
// without the interest threshold), evaluate its accuracy at both policy
// thresholds, and drive Algorithm 2 with a prediction.
package main

import (
	"fmt"
	"log"
	"time"

	"eabrowse"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("synthesizing the 40-user browsing trace...")
	ds, err := eabrowse.SynthesizeTrace(eabrowse.DefaultTraceConfig())
	if err != nil {
		return err
	}
	fmt.Printf("trace: %d visits over %d distinct pages\n\n", len(ds.Visits), len(ds.Pool))

	train, test, err := eabrowse.SplitTrace(ds.Visits, 0.3, 7)
	if err != nil {
		return err
	}

	for _, interest := range []bool{false, true} {
		cfg := eabrowse.DefaultPredictorConfig()
		cfg.UseInterestThreshold = interest
		pred, err := eabrowse.TrainPredictor(train, cfg)
		if err != nil {
			return err
		}
		a9, err := pred.Evaluate(test, 9, interest)
		if err != nil {
			return err
		}
		a20, err := pred.Evaluate(test, 20, interest)
		if err != nil {
			return err
		}
		fmt.Printf("interest threshold %-5v  %d trees  Tp=9s: %5.1f%%  Td=20s: %5.1f%%\n",
			interest, pred.NumTrees(), a9.Pct(), a20.Pct())
	}

	// Drive Algorithm 2 with one prediction.
	cfg := eabrowse.DefaultPredictorConfig()
	pred, err := eabrowse.TrainPredictor(train, cfg)
	if err != nil {
		return err
	}
	visit := test[0]
	seconds, err := pred.PredictSeconds(visit.Features)
	if err != nil {
		return err
	}
	params := eabrowse.DefaultPolicyParams()
	decision := eabrowse.ShouldSwitchToIdle(time.Duration(seconds*float64(time.Second)), params)
	fmt.Printf("\nexample visit on %s: predicted reading %.1f s (actual %.1f s)\n",
		visit.Page, seconds, visit.ReadingSeconds)
	fmt.Printf("Algorithm 2 (%v, Td=%v): switch radio to IDLE? %v\n",
		params.Mode, params.Td, decision)
	return nil
}
