// Policysession: the whole system in one browsing session. A user visits a
// sequence of pages; after each page opens, Algorithm 2 waits the interest
// threshold, predicts the reading time with the trained GBRT, and decides
// whether to force the radio to IDLE. The same session replayed on the stock
// browser shows what the policy saves.
package main

import (
	"fmt"
	"log"
	"time"

	"eabrowse"
)

// sessionStep is one page view: which page and how long the user reads it.
type sessionStep struct {
	page    string
	reading time.Duration
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Train the predictor on a small synthesized trace.
	fmt.Println("training the reading-time predictor...")
	cfg := eabrowse.DefaultTraceConfig()
	cfg.Users = 10
	ds, err := eabrowse.SynthesizeTrace(cfg)
	if err != nil {
		return err
	}
	pcfg := eabrowse.DefaultPredictorConfig()
	pcfg.GBRT.Trees = 150
	pred, err := eabrowse.TrainPredictor(ds.Visits, pcfg)
	if err != nil {
		return err
	}
	// Power-driven mode: release whenever the predicted reading time clears
	// the 9-second energy crossover (Tp), accepting a possible promotion
	// delay on the next click (Section 4.3.5).
	params := eabrowse.DefaultPolicyParams()
	params.Mode = eabrowse.PolicyModePower

	// A plausible session: skim a portal, read an article, bounce, read.
	session := []sessionStep{
		{"m.cnn.com", 4 * time.Second},
		{"espn.go.com/sports", 45 * time.Second},
		{"m.ebay.com", 2 * time.Second},
		{"bbc.com/travel", 30 * time.Second},
	}

	type outcome struct {
		name   string
		energy float64
	}
	var outcomes []outcome
	for _, usePolicy := range []bool{false, true} {
		name := "original browser, timers only"
		mode := eabrowse.ModeOriginal
		var opts []eabrowse.PhoneOption
		if usePolicy {
			name = "energy-aware browser + Algorithm 2"
			mode = eabrowse.ModeEnergyAware
			// The policy owns the release decision; disable the engine's
			// automatic dormancy.
			opts = append(opts, eabrowse.WithEngineOptions(eabrowse.WithoutAutoDormancy()))
		}
		phone, err := eabrowse.New(mode, opts...)
		if err != nil {
			return err
		}
		fmt.Printf("\n--- %s ---\n", name)
		for _, step := range session {
			page, err := eabrowse.BenchmarkPage(step.page)
			if err != nil {
				return err
			}
			res, err := phone.LoadPage(page)
			if err != nil {
				return err
			}
			decision := "radio follows timers"
			if usePolicy {
				if step.reading >= params.Alpha {
					phone.Read(params.Alpha)
					feats, err := eabrowse.ExtractFeatures(res)
					if err != nil {
						return err
					}
					seconds, err := pred.PredictSeconds(feats)
					if err != nil {
						return err
					}
					predicted := time.Duration(seconds * float64(time.Second))
					if eabrowse.ShouldSwitchToIdle(predicted, params) {
						if err := phone.ForceRadioIdle(); err == nil {
							decision = fmt.Sprintf("predicted %.0fs -> forced IDLE", seconds)
						} else {
							decision = fmt.Sprintf("predicted %.0fs -> release refused (%v)", seconds, err)
						}
					} else {
						decision = fmt.Sprintf("predicted %.0fs -> stay on timers", seconds)
					}
					phone.Read(step.reading - params.Alpha)
				} else {
					phone.Read(step.reading)
					decision = "clicked away before the interest threshold"
				}
			} else {
				phone.Read(step.reading)
			}
			fmt.Printf("%-22s loaded %5.1fs, read %3.0fs, %-42s radio now %v\n",
				step.page, res.FinalDisplayAt.Seconds(), step.reading.Seconds(),
				decision, phone.RadioState())
		}
		outcomes = append(outcomes, outcome{name: name, energy: phone.EnergyJ()})
	}

	fmt.Println()
	for _, o := range outcomes {
		fmt.Printf("%-38s %.1f J\n", o.name, o.energy)
	}
	saving := (outcomes[0].energy - outcomes[1].energy) / outcomes[0].energy * 100
	fmt.Printf("session energy saving: %.1f%%\n", saving)
	return nil
}
