// Quickstart: load one benchmark page under both pipelines on a simulated
// 3G smartphone and compare loading time and energy — the paper's headline
// experiment in a dozen lines of API.
package main

import (
	"fmt"
	"log"
	"time"

	"eabrowse"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	page, err := eabrowse.ESPNSports()
	if err != nil {
		return err
	}
	fmt.Printf("loading %s (%d resources, %d KB) with 20 s of reading...\n\n",
		page.Name, page.ResourceCount(), page.TotalBytes()/1024)

	var origTotal float64
	for _, mode := range []eabrowse.Mode{eabrowse.ModeOriginal, eabrowse.ModeEnergyAware} {
		phone, err := eabrowse.New(mode)
		if err != nil {
			return err
		}
		res, err := phone.LoadPage(page)
		if err != nil {
			return err
		}
		phone.Read(20 * time.Second)
		total := phone.EnergyJ()
		fmt.Printf("%-13s transmission %5.1fs  loaded %5.1fs  radio now %-5v  energy %5.1f J\n",
			mode, res.TransmissionTime.Seconds(), res.FinalDisplayAt.Seconds(),
			phone.RadioState(), total)
		if mode == eabrowse.ModeOriginal {
			origTotal = total
		} else {
			fmt.Printf("\nenergy saving: %.1f%% (paper: more than 30%%)\n",
				(origTotal-total)/origTotal*100)
		}
	}
	return nil
}
