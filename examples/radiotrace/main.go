// Radiotrace: a walkthrough of the UMTS RRC machinery the whole paper rests
// on — promotions, the T1/T2 inactivity timers, fast dormancy, and what each
// state costs. Prints a timeline like Fig. 1.
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"eabrowse/internal/energy"
	"eabrowse/internal/netsim"
	"eabrowse/internal/rrc"
	"eabrowse/internal/simtime"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	clock := simtime.NewClock()
	radio, err := rrc.NewMachine(clock, rrc.DefaultConfig(), rrc.WithTransitionTrace())
	if err != nil {
		return err
	}
	link, err := netsim.NewLink(clock, radio, netsim.DefaultConfig())
	if err != nil {
		return err
	}
	meter, err := energy.NewMeter(clock, energy.DefaultInterval, radio.RadioPower)
	if err != nil {
		return err
	}
	meter.Start()

	// Scenario: 100 KB download, 6 s pause, a second download, then let the
	// timers decay the radio; finally, a fast-dormancy release demo.
	if err := link.Fetch("object-1", 100*1024, func() {
		clock.After(6*time.Second, func() {
			if err := link.Fetch("object-2", 50*1024, nil); err != nil {
				log.Print(err)
			}
		})
	}); err != nil {
		return err
	}
	clock.RunUntil(40 * time.Second)

	fmt.Println("state transitions:")
	for _, tr := range radio.History() {
		fmt.Printf("  %6.2fs  %-17v -> %v\n", tr.At.Seconds(), tr.From, tr.To)
	}

	fmt.Println("\npower trace (1 s resolution):")
	for i, s := range meter.Samples() {
		if i%4 != 0 {
			continue
		}
		n := int(s.Watts / 2.0 * 40)
		if n > 40 {
			n = 40
		}
		fmt.Printf("  %5.1fs %s %.2f W\n", s.At.Seconds(), strings.Repeat("#", n), s.Watts)
	}
	meter.Stop()

	fmt.Printf("\ncumulative energy: %.1f J; time in DCH %v, FACH %v, IDLE %v\n",
		radio.EnergyJ(), radio.TimeIn(rrc.StateDCH).Round(time.Millisecond),
		radio.TimeIn(rrc.StateFACH).Round(time.Millisecond),
		radio.TimeIn(rrc.StateIdle).Round(time.Millisecond))

	// Fast dormancy: what Section 4.4's RIL state switch does.
	fmt.Println("\nfast dormancy demo: one more transfer, then force IDLE immediately")
	before := radio.EnergyJ()
	if err := link.Fetch("object-3", 20*1024, func() {
		if err := radio.ForceIdle(); err != nil {
			log.Print(err)
		}
	}); err != nil {
		return err
	}
	clock.RunFor(20 * time.Second)
	fmt.Printf("radio is now %v; the transfer plus 20 s window cost %.1f J "+
		"(the timers would have burned the full DCH+FACH tail instead)\n",
		radio.State(), radio.EnergyJ()-before)
	return nil
}
