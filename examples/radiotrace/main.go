// Radiotrace: a walkthrough of the UMTS RRC machinery the whole paper rests
// on — promotions, the T1/T2 inactivity timers, fast dormancy, and what each
// state costs. Prints a timeline like Fig. 1, then replays the same transfer
// on every registered radio backend (UMTS, LTE DRX, 5G NR) to show how each
// generation's tail decays and what fast dormancy is still worth.
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"eabrowse/internal/energy"
	"eabrowse/internal/netsim"
	"eabrowse/internal/rrc"
	"eabrowse/internal/simtime"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	clock := simtime.NewClock()
	radio, err := rrc.NewMachine(clock, rrc.DefaultConfig(), rrc.WithTransitionTrace())
	if err != nil {
		return err
	}
	link, err := netsim.NewLink(clock, radio, netsim.DefaultConfig())
	if err != nil {
		return err
	}
	meter, err := energy.NewMeter(clock, energy.DefaultInterval, radio.RadioPower)
	if err != nil {
		return err
	}
	meter.Start()

	// Scenario: 100 KB download, 6 s pause, a second download, then let the
	// timers decay the radio; finally, a fast-dormancy release demo.
	if err := link.Fetch("object-1", 100*1024, func() {
		clock.After(6*time.Second, func() {
			if err := link.Fetch("object-2", 50*1024, nil); err != nil {
				log.Print(err)
			}
		})
	}); err != nil {
		return err
	}
	clock.RunUntil(40 * time.Second)

	fmt.Println("state transitions:")
	for _, tr := range radio.History() {
		fmt.Printf("  %6.2fs  %-17v -> %v\n", tr.At.Seconds(), tr.From, tr.To)
	}

	fmt.Println("\npower trace (1 s resolution):")
	for i, s := range meter.Samples() {
		if i%4 != 0 {
			continue
		}
		n := int(s.Watts / 2.0 * 40)
		if n > 40 {
			n = 40
		}
		fmt.Printf("  %5.1fs %s %.2f W\n", s.At.Seconds(), strings.Repeat("#", n), s.Watts)
	}
	meter.Stop()

	fmt.Printf("\ncumulative energy: %.1f J; time in DCH %v, FACH %v, IDLE %v\n",
		radio.EnergyJ(), radio.TimeIn(rrc.StateDCH).Round(time.Millisecond),
		radio.TimeIn(rrc.StateFACH).Round(time.Millisecond),
		radio.TimeIn(rrc.StateIdle).Round(time.Millisecond))

	// Fast dormancy: what Section 4.4's RIL state switch does.
	fmt.Println("\nfast dormancy demo: one more transfer, then force IDLE immediately")
	before := radio.EnergyJ()
	if err := link.Fetch("object-3", 20*1024, func() {
		if err := radio.ForceIdle(); err != nil {
			log.Print(err)
		}
	}); err != nil {
		return err
	}
	clock.RunFor(20 * time.Second)
	fmt.Printf("radio is now %v; the transfer plus 20 s window cost %.1f J "+
		"(the timers would have burned the full DCH+FACH tail instead)\n",
		radio.State(), radio.EnergyJ()-before)

	return crossBackend()
}

// crossBackend is the LTE/NR quickstart: resolve each registered profile by
// name through the RadioModel interface, run one 100 KB transfer plus a 20 s
// reading window, and compare letting the tail timers decay against forcing
// dormancy right after the transfer.
func crossBackend() error {
	fmt.Println("\nsame transfer + 20 s read on every backend (timers vs fast dormancy):")
	for _, name := range rrc.Profiles() {
		spec, err := rrc.ProfileSpec(name)
		if err != nil {
			return err
		}
		timersJ, err := transferAndRead(spec, false)
		if err != nil {
			return err
		}
		dormantJ, err := transferAndRead(spec, true)
		if err != nil {
			return err
		}
		tail := spec.Tail()
		fmt.Printf("  %-4s  timers %5.1f J   forced-idle %5.1f J   saving %4.1f%%   (tail %v)\n",
			name, timersJ, dormantJ, (timersJ-dormantJ)/timersJ*100, tail.TotalDwell())
	}
	return nil
}

// transferAndRead fetches 100 KB on a fresh phone of the given backend, then
// reads for 20 s, optionally forcing dormancy the moment the transfer ends.
func transferAndRead(spec rrc.ModelSpec, forceIdle bool) (float64, error) {
	clock := simtime.NewClock()
	radio, err := spec.New(clock)
	if err != nil {
		return 0, err
	}
	link, err := netsim.NewLink(clock, radio, netsim.DefaultConfig())
	if err != nil {
		return 0, err
	}
	done := false
	err = link.Fetch("object", 100*1024, func() {
		if forceIdle {
			if ferr := radio.ForceIdle(); ferr != nil {
				log.Print(ferr)
			}
		}
		done = true
	})
	if err != nil {
		return 0, err
	}
	for !done {
		if !clock.Step() {
			return 0, fmt.Errorf("%s: transfer stalled", spec.Profile())
		}
	}
	clock.RunFor(20 * time.Second)
	return radio.EnergyJ(), nil
}
