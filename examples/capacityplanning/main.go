// Capacityplanning: an operator's view of the paper's Section 5.4 result —
// how many browsing users can one cell's 200 dedicated channel pairs carry,
// and how much capacity the energy-aware browser's shorter channel holds
// buy back.
package main

import (
	"fmt"
	"log"

	"eabrowse"
	"eabrowse/internal/capacity"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	pages, err := eabrowse.FullBenchmark()
	if err != nil {
		return err
	}

	// Measure the per-page channel-hold (data transmission) times under
	// both pipelines.
	service := make(map[eabrowse.Mode][]float64)
	for _, mode := range []eabrowse.Mode{eabrowse.ModeOriginal, eabrowse.ModeEnergyAware} {
		for _, page := range pages {
			phone, err := eabrowse.New(mode)
			if err != nil {
				return err
			}
			res, err := phone.LoadPage(page)
			if err != nil {
				return err
			}
			service[mode] = append(service[mode], res.TransmissionTime.Seconds())
		}
	}

	cfg := capacity.DefaultConfig()
	fmt.Printf("M/G/%d loss system, one session per user every %v on average, %v horizon\n\n",
		cfg.Channels, cfg.MeanSessionInterval, cfg.Duration)

	fmt.Println("users  original drop%  energy-aware drop%")
	for users := 120; users <= 220; users += 20 {
		ro, err := capacity.Simulate(users, service[eabrowse.ModeOriginal], cfg)
		if err != nil {
			return err
		}
		ra, err := capacity.Simulate(users, service[eabrowse.ModeEnergyAware], cfg)
		if err != nil {
			return err
		}
		fmt.Printf("%5d  %13.2f  %17.2f\n", users, ro.DropPercent, ra.DropPercent)
	}

	orig, err := capacity.SupportedUsers(service[eabrowse.ModeOriginal], 2, cfg)
	if err != nil {
		return err
	}
	aware, err := capacity.SupportedUsers(service[eabrowse.ModeEnergyAware], 2, cfg)
	if err != nil {
		return err
	}
	fmt.Printf("\nusers supported at 2%% session dropping: original %d, energy-aware %d (+%.1f%%)\n",
		orig, aware, float64(aware-orig)/float64(orig)*100)
	return nil
}
