#!/usr/bin/env bash
# Run a benchmark suite and emit a machine-readable perf-trajectory snapshot
# future PRs diff against.
#
# Usage:
#   scripts/bench.sh [-f] [suite] [output.json]
#
# Suites:
#   gbrt  (default)  GBRT training/prediction        -> BENCH_GBRT.json
#   sim              simulation core (visit + fleet) -> BENCH_SIM.json
#   fleet            fleet-at-scale throughput       -> BENCH_FLEET.json
#   serve            easerd request path + eaload    -> BENCH_SERVE.json
#
# The serve suite additionally drives an in-process easerd with cmd/eaload
# (closed-loop saturation on each endpoint plus one open-loop run) and
# appends the reports under a "load" key, so the snapshot records both the
# handler's ns/op+allocs/op and the whole-server req/s at saturation.
#
# For backwards compatibility a single .json argument selects the gbrt suite
# with that output path.
#
# Overwriting a git-tracked snapshot while the working tree is dirty is
# refused (a half-finished change would silently become the committed
# baseline); pass -f to override.
#
# The JSON is an object with run metadata plus one record per benchmark:
#   {"go": "...", "commit": "...", "benchmarks": [
#     {"name": "...", "iterations": N, "ns_per_op": ..., "b_per_op": ...,
#      "allocs_per_op": ..., "extra": {"trees": ...}}, ...]}
#
# Parsing is plain awk so the script runs on a bare runner without jq.
set -euo pipefail

cd "$(dirname "$0")/.."
force=0
if [ "${1:-}" = "-f" ]; then
	force=1
	shift
fi
suite="${1:-gbrt}"
case "$suite" in
*.json)
	out="$suite"
	suite="gbrt"
	;;
*)
	out="${2:-}"
	;;
esac

case "$suite" in
gbrt) out="${out:-BENCH_GBRT.json}" ;;
sim) out="${out:-BENCH_SIM.json}" ;;
fleet) out="${out:-BENCH_FLEET.json}" ;;
serve) out="${out:-BENCH_SERVE.json}" ;;
*)
	echo "unknown suite: $suite (want gbrt, sim, fleet or serve)" >&2
	exit 2
	;;
esac

# Refuse to overwrite a committed snapshot from a dirty tree: the snapshot
# records the perf of a commit, and a dirty tree is not one.
if [ "$force" -ne 1 ] && [ -e "$out" ] &&
	git ls-files --error-unmatch "$out" > /dev/null 2>&1 &&
	[ -n "$(git status --porcelain 2>/dev/null)" ]; then
	echo "refusing to overwrite committed snapshot $out on a dirty tree (use -f to override)" >&2
	exit 3
fi

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

case "$suite" in
gbrt)
	# Root-package GBRT benchmarks (train shapes + batch prediction) and the
	# in-package fleet-shape pair, which includes the preserved pre-refactor
	# reference engine so old-vs-new is always measured on the same machine.
	go test -run '^$' -bench '^BenchmarkGBRT' -benchmem -count=1 . | tee -a "$raw"
	go test -run '^$' -bench 'FleetShape' -benchmem -count=1 ./internal/gbrt | tee -a "$raw"
	;;
sim)
	# Steady-state pooled visit (the zero-alloc target CI gates on), its
	# fresh-session baseline, and the fleet experiment end to end.
	go test -run '^$' -bench '^(BenchmarkVisit|BenchmarkVisitFresh)$' \
		-benchmem -count=1 ./internal/experiments | tee -a "$raw"
	go test -run '^$' -bench '^BenchmarkFleetReplay$' -benchtime 3x \
		-benchmem -count=1 ./internal/experiments | tee -a "$raw"
	;;
fleet)
	# Fleet throughput at a fold-dominated population: users_per_sec, visit
	# count and process peak RSS ride along as custom metrics, and CI gates
	# on allocs-per-visit (allocs_per_op / visits).
	go test -run '^$' -bench '^BenchmarkFleetScale$' -benchtime 2x \
		-benchmem -count=1 ./internal/experiments | tee -a "$raw"
	;;
serve)
	# End-to-end handler benchmarks (HTTP request bytes in, response bytes
	# out, through the pooled fast path — the 0 allocs/op CI gate) plus the
	# bare predictor core.
	go test -run '^$' -bench '^(BenchmarkServePredict|BenchmarkServeDecide|BenchmarkServePredictBatch64|BenchmarkPredictCore)$' \
		-benchmem -count=1 ./internal/serve | tee -a "$raw"
	;;
esac

gover="$(go version | awk '{print $3}')"
commit="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"

awk -v gover="$gover" -v commit="$commit" '
  /^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)  # strip GOMAXPROCS suffix
    iters = $2
    ns = ""; b = ""; allocs = ""; extra = ""
    for (i = 3; i < NF; i++) {
      unit = $(i + 1)
      if (unit == "ns/op") ns = $i
      else if (unit == "B/op") b = $i
      else if (unit == "allocs/op") allocs = $i
      else if (unit ~ /^[A-Za-z]/) {
        # custom ReportMetric units, e.g. "400.0 trees"
        split(unit, u, "/")
        if (extra != "") extra = extra ","
        extra = extra "\"" u[1] "\":" $i
      }
    }
    rec = sprintf("{\"name\":\"%s\",\"iterations\":%s,\"ns_per_op\":%s", name, iters, ns)
    if (b != "") rec = rec sprintf(",\"b_per_op\":%s", b)
    if (allocs != "") rec = rec sprintf(",\"allocs_per_op\":%s", allocs)
    if (extra != "") rec = rec sprintf(",\"extra\":{%s}", extra)
    rec = rec "}"
    recs[++n] = rec
  }
  END {
    printf "{\n  \"go\": \"%s\",\n  \"commit\": \"%s\",\n  \"benchmarks\": [\n", gover, commit
    for (i = 1; i <= n; i++) printf "    %s%s\n", recs[i], (i < n ? "," : "")
    printf "  ]\n}\n"
  }
' "$raw" > "$out"

if [ "$suite" = "serve" ]; then
	# Whole-server measurements: eaload drives an in-process easerd (fresh
	# demo model per run) over real sockets. Closed-loop saturation on each
	# endpoint answers "req/s this box serves"; one open-loop run at a fixed
	# arrival rate reports coordinated-omission-safe tail latency. Record
	# order is fixed — CI's threshold diff addresses records by position.
	bin="$(mktemp)"
	ldir="$(mktemp -d)"
	trap 'rm -f "$raw" "$bin"; rm -rf "$ldir"' EXIT
	go build -o "$bin" ./cmd/eaload
	"$bin" -inprocess -json -endpoint predict -conns 16 -duration 6s -warmup 2s > "$ldir/1_predict_closed.json"
	"$bin" -inprocess -json -endpoint decide -conns 16 -duration 6s -warmup 2s > "$ldir/2_decide_closed.json"
	"$bin" -inprocess -json -endpoint predict_batch -batch 16 -conns 16 -duration 6s -warmup 2s > "$ldir/3_batch16_closed.json"
	"$bin" -inprocess -json -endpoint predict -rate 20000 -conns 64 -duration 6s -warmup 2s > "$ldir/4_predict_open20k.json"
	tmp="$(mktemp "$out.XXXXXX")"
	{
		sed '$d' "$out" # the closing brace moves below the load array
		printf '  ,"load": [\n'
		first=1
		for f in "$ldir"/*.json; do
			[ "$first" -eq 1 ] || printf '    ,\n'
			first=0
			sed 's/^/    /' "$f"
		done
		printf '  ]\n}\n'
	} > "$tmp"
	mv "$tmp" "$out"
fi

echo "wrote $out"
