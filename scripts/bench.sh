#!/usr/bin/env bash
# Run a benchmark suite and emit a machine-readable perf-trajectory snapshot
# future PRs diff against.
#
# Usage:
#   scripts/bench.sh [suite] [output.json]
#
# Suites:
#   gbrt  (default)  GBRT training/prediction        -> BENCH_GBRT.json
#   sim              simulation core (visit + fleet) -> BENCH_SIM.json
#
# For backwards compatibility a single .json argument selects the gbrt suite
# with that output path.
#
# The JSON is an object with run metadata plus one record per benchmark:
#   {"go": "...", "commit": "...", "benchmarks": [
#     {"name": "...", "iterations": N, "ns_per_op": ..., "b_per_op": ...,
#      "allocs_per_op": ..., "extra": {"trees": ...}}, ...]}
#
# Parsing is plain awk so the script runs on a bare runner without jq.
set -euo pipefail

cd "$(dirname "$0")/.."
suite="${1:-gbrt}"
case "$suite" in
*.json)
	out="$suite"
	suite="gbrt"
	;;
*)
	out="${2:-}"
	;;
esac

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

case "$suite" in
gbrt)
	out="${out:-BENCH_GBRT.json}"
	# Root-package GBRT benchmarks (train shapes + batch prediction) and the
	# in-package fleet-shape pair, which includes the preserved pre-refactor
	# reference engine so old-vs-new is always measured on the same machine.
	go test -run '^$' -bench '^BenchmarkGBRT' -benchmem -count=1 . | tee -a "$raw"
	go test -run '^$' -bench 'FleetShape' -benchmem -count=1 ./internal/gbrt | tee -a "$raw"
	;;
sim)
	out="${out:-BENCH_SIM.json}"
	# Steady-state pooled visit (the zero-alloc target CI gates on), its
	# fresh-session baseline, and the fleet experiment end to end.
	go test -run '^$' -bench '^(BenchmarkVisit|BenchmarkVisitFresh)$' \
		-benchmem -count=1 ./internal/experiments | tee -a "$raw"
	go test -run '^$' -bench '^BenchmarkFleetReplay$' -benchtime 3x \
		-benchmem -count=1 ./internal/experiments | tee -a "$raw"
	;;
*)
	echo "unknown suite: $suite (want gbrt or sim)" >&2
	exit 2
	;;
esac

gover="$(go version | awk '{print $3}')"
commit="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"

awk -v gover="$gover" -v commit="$commit" '
  /^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)  # strip GOMAXPROCS suffix
    iters = $2
    ns = ""; b = ""; allocs = ""; extra = ""
    for (i = 3; i < NF; i++) {
      unit = $(i + 1)
      if (unit == "ns/op") ns = $i
      else if (unit == "B/op") b = $i
      else if (unit == "allocs/op") allocs = $i
      else if (unit ~ /^[A-Za-z]/) {
        # custom ReportMetric units, e.g. "400.0 trees"
        split(unit, u, "/")
        if (extra != "") extra = extra ","
        extra = extra "\"" u[1] "\":" $i
      }
    }
    rec = sprintf("{\"name\":\"%s\",\"iterations\":%s,\"ns_per_op\":%s", name, iters, ns)
    if (b != "") rec = rec sprintf(",\"b_per_op\":%s", b)
    if (allocs != "") rec = rec sprintf(",\"allocs_per_op\":%s", allocs)
    if (extra != "") rec = rec sprintf(",\"extra\":{%s}", extra)
    rec = rec "}"
    recs[++n] = rec
  }
  END {
    printf "{\n  \"go\": \"%s\",\n  \"commit\": \"%s\",\n  \"benchmarks\": [\n", gover, commit
    for (i = 1; i <= n; i++) printf "    %s%s\n", recs[i], (i < n ? "," : "")
    printf "  ]\n}\n"
  }
' "$raw" > "$out"

echo "wrote $out"
