// Package eabrowse is a faithful, laptop-scale reproduction of
// "Energy-Aware Web Browsing in 3G Based Smartphones" (Zhao, Zheng, Cao —
// ICDCS 2013) as a Go library.
//
// It implements the paper's two techniques — reordering the browser's
// computation sequence so all data transmissions group together and the 3G
// radio can be released early, and GBRT-based reading-time prediction that
// drops the radio to IDLE during long reads — together with every substrate
// they need: a discrete-event simulator, the UMTS RRC state machine with its
// inactivity timers and promotion costs, a radio link, real HTML/CSS/script
// processing, a synthetic benchmark corpus, a browsing-trace synthesizer,
// gradient-boosted regression trees, the Algorithm 2 policy, and an
// Erlang-loss capacity model.
//
// Quick start:
//
//	page, _ := eabrowse.ESPNSports()
//	phone, _ := eabrowse.New(eabrowse.ModeEnergyAware)
//	res, _ := phone.LoadPage(page)
//	phone.Read(20 * time.Second)
//	fmt.Printf("loaded in %v, %.1f J\n", res.FinalDisplayAt, phone.EnergyJ())
//
// Phones are configured with variadic options; substrate overrides compose:
//
//	phone, _ := eabrowse.New(eabrowse.ModeEnergyAware,
//	        eabrowse.WithRadioConfig(radio),
//	        eabrowse.WithEngineOptions(eabrowse.WithDormancyGuard(0)))
//
// The experiment harness behind cmd/eabench is exposed through the
// Experiments type; each method regenerates one table or figure of the
// paper's evaluation. Experiments fan their independent simulations out on a
// bounded worker pool — SetParallelism sizes it — and results are identical
// at any worker count.
package eabrowse

import (
	"io"
	"time"

	"eabrowse/internal/browser"
	"eabrowse/internal/channel"
	"eabrowse/internal/experiments"
	"eabrowse/internal/faults"
	"eabrowse/internal/features"
	"eabrowse/internal/gbrt"
	"eabrowse/internal/netsim"
	"eabrowse/internal/policy"
	"eabrowse/internal/predictor"
	"eabrowse/internal/rrc"
	"eabrowse/internal/runner"
	"eabrowse/internal/trace"
	"eabrowse/internal/webpage"
)

// Core re-exported types. Aliases keep the implementation in internal
// packages while giving library users one import.
type (
	// Mode selects the loading pipeline (original vs. energy-aware).
	Mode = browser.Mode
	// Result summarizes one page load.
	Result = browser.Result
	// CostModel maps browser operations to simulated device CPU time.
	CostModel = browser.CostModel
	// EngineOption configures the browser engine.
	EngineOption = browser.Option

	// Page is a generated webpage with all its resources.
	Page = webpage.Page
	// PageSpec parameterizes the page generator.
	PageSpec = webpage.Spec

	// RadioConfig holds the UMTS RRC timers, latencies and Table 5 powers.
	RadioConfig = rrc.Config
	// RadioState is a radio state index. For UMTS these are IDLE/FACH/DCH
	// and transients; other backends define their own ladders. State 1
	// (RadioIdle) is the terminal idle state on every backend.
	RadioState = rrc.State
	// RadioModel is the radio-backend abstraction: any implementation of
	// the RRC-style state machine the phone's energy accounting runs on.
	RadioModel = rrc.RadioModel
	// RadioModelSpec is a validated radio configuration that can mint
	// RadioModel instances — what WithRadioModel accepts and
	// RadioProfileSpec returns.
	RadioModelSpec = rrc.ModelSpec
	// RadioTailProfile is a backend's declarative tail shape (per-stage
	// powers, dwell times and promotion costs) for policy arithmetic.
	RadioTailProfile = rrc.TailProfile
	// LinkConfig holds the radio-link bandwidth and RTT parameters.
	LinkConfig = netsim.Config

	// FaultConfig is a fault-injection profile for the link and RIL daemon.
	FaultConfig = faults.Config

	// ChannelSchedule is a deterministic piecewise time-varying channel: a
	// validated sequence of bandwidth/latency/loss segments the link replays.
	ChannelSchedule = channel.Schedule
	// ChannelConditions is one segment's link impairment (bandwidth factor,
	// extra RTT, loss rate).
	ChannelConditions = channel.Conditions
	// ChannelSegment is one timed span of a channel schedule.
	ChannelSegment = channel.Segment

	// AdaptivePolicy is the per-user recursive release-threshold estimator —
	// the alternative to Algorithm 2's static thresholds under time-varying
	// channels.
	AdaptivePolicy = policy.Adaptive
	// AdaptivePolicyConfig tunes the estimator's gain and clamp.
	AdaptivePolicyConfig = policy.AdaptiveConfig

	// PhoneOption configures one aspect of a phone built by New.
	PhoneOption = experiments.SessionOption

	// FeatureVector is the Table 1 ten-feature vector.
	FeatureVector = features.Vector

	// BrowsingTrace is a synthesized multi-user browsing dataset.
	BrowsingTrace = trace.Dataset
	// TraceConfig parameterizes trace synthesis.
	TraceConfig = trace.Config
	// Visit is one page view in a browsing trace.
	Visit = trace.Visit

	// Predictor is the GBRT reading-time predictor.
	Predictor = predictor.Predictor
	// PredictorConfig controls predictor training.
	PredictorConfig = predictor.Config

	// GBRTConfig holds the boosting hyperparameters.
	GBRTConfig = gbrt.Config
	// GBRTModel is a trained gradient-boosted forest.
	GBRTModel = gbrt.Model

	// PolicyParams are Algorithm 2's thresholds and mode.
	PolicyParams = policy.Params
)

// Pipeline modes.
const (
	ModeOriginal    = browser.ModeOriginal
	ModeEnergyAware = browser.ModeEnergyAware
)

// Radio states.
const (
	RadioIdle = rrc.StateIdle
	RadioFACH = rrc.StateFACH
	RadioDCH  = rrc.StateDCH
)

// Algorithm 2 modes (Table 2).
const (
	// PolicyModeDelay only releases when no delay penalty is possible.
	PolicyModeDelay = policy.ModeDelay
	// PolicyModePower also releases whenever it merely saves energy.
	PolicyModePower = policy.ModePower
)

// Engine options.
var (
	// WithDormancyGuard overrides the delay between the end of data
	// transmission and the forced radio release.
	WithDormancyGuard = browser.WithDormancyGuard
	// WithoutAutoDormancy keeps the computation reordering but leaves the
	// radio to its timers.
	WithoutAutoDormancy = browser.WithoutAutoDormancy
)

// Phone options for New.
var (
	// WithRadioModel selects the radio backend a phone simulates: any
	// RadioModelSpec, typically one of the named profiles from
	// RadioProfileSpec ("umts", "lte", "nr") or a customized
	// RadioConfig/LTEConfig/NRConfig value.
	WithRadioModel = experiments.WithRadioModel
	// WithRadioConfig overrides the UMTS RRC timers, latencies and Table 5
	// powers.
	//
	// Deprecated: use WithRadioModel — RadioConfig implements
	// RadioModelSpec, so WithRadioModel(cfg) is a drop-in replacement that
	// also accepts the LTE and NR backends.
	WithRadioConfig = experiments.WithRadioConfig
	// WithLinkConfig overrides the radio-link bandwidth and RTT parameters.
	WithLinkConfig = experiments.WithLinkConfig
	// WithCostModel overrides the browser CPU cost model.
	WithCostModel = experiments.WithCostModel
	// WithFaultInjector impairs the phone's link and RIL daemon with a fault
	// profile (Section 4.4 resilience path).
	WithFaultInjector = experiments.WithFaultInjector
	// WithEngineOptions appends browser-engine options (dormancy guard,
	// event log, ...).
	WithEngineOptions = experiments.WithEngineOptions
	// WithChannel drives the phone's link from a time-varying channel
	// schedule (built-in scenario, parsed trace, or NewChannelSchedule);
	// composes with WithFaultInjector the way toxics stack on a proxy.
	WithChannel = experiments.WithChannel
)

// ChannelScenarios lists the built-in channel scenarios ("bursty-loss",
// "cell-handover", "congestion-ramp", "fading", "steady-3g"), sorted. Every
// name is valid for ChannelScenario, eabench -fleet-channel and the easerd
// "channel" request field.
func ChannelScenarios() []string { return channel.Scenarios() }

// ChannelScenario resolves a named built-in scenario to its schedule.
// Unknown names error with the valid-name list.
func ChannelScenario(name string) (*ChannelSchedule, error) { return channel.ScenarioSchedule(name) }

// NewChannelSchedule builds a validated schedule from explicit segments;
// repeat makes it cycle instead of holding the last segment forever.
func NewChannelSchedule(name string, repeat bool, segments ...ChannelSegment) (*ChannelSchedule, error) {
	return channel.New(name, repeat, segments...)
}

// ParseChannelTrace reads a JSONL channel trace (one segment per line, with
// an optional header naming the trace) into a schedule.
func ParseChannelTrace(r io.Reader) (*ChannelSchedule, error) { return channel.ParseTrace(r) }

// FormatChannelTrace writes a schedule back out in the JSONL trace format;
// ParseChannelTrace(FormatChannelTrace(s)) reproduces s exactly.
func FormatChannelTrace(w io.Writer, s *ChannelSchedule) error { return channel.FormatTrace(w, s) }

// NewAdaptivePolicy builds a per-user adaptive threshold estimator for a
// radio tail, seeded with the profile's closed-form priors.
func NewAdaptivePolicy(cfg AdaptivePolicyConfig, tail RadioTailProfile) (*AdaptivePolicy, error) {
	return policy.NewAdaptive(cfg, tail)
}

// DefaultAdaptivePolicyConfig derives the estimator's default gain and clamp
// from Algorithm 2's parameters.
func DefaultAdaptivePolicyConfig(p PolicyParams) AdaptivePolicyConfig {
	return policy.DefaultAdaptiveConfig(p)
}

// SetParallelism sizes the worker pool experiments fan out on. n <= 0 resets
// to GOMAXPROCS. Results are byte-identical at any setting; only wall-clock
// time changes.
func SetParallelism(n int) { runner.SetWorkers(n) }

// Parallelism returns the current worker-pool size.
func Parallelism() int { return runner.Workers() }

// DefaultRadioConfig returns the calibrated UMTS parameters (Table 5 powers,
// T1 = 4 s, T2 = 15 s, Fig. 3 crossover at 9 s).
//
// Deprecated: use RadioProfileSpec("umts") (or keep this when you need the
// concrete RadioConfig to tweak timers; it still implements RadioModelSpec).
func DefaultRadioConfig() RadioConfig { return rrc.DefaultConfig() }

// RadioProfiles lists the registered radio backends ("lte", "nr", "umts"),
// sorted. Every name is valid for RadioProfileSpec, eabench -radio, the
// easerd "radio" request field and fleet radio mixes.
func RadioProfiles() []string { return rrc.Profiles() }

// RadioProfileSpec resolves a named radio profile to its calibrated spec for
// WithRadioModel. Unknown names error with the valid-name list.
func RadioProfileSpec(name string) (RadioModelSpec, error) { return rrc.ProfileSpec(name) }

// DefaultLTEConfig returns the calibrated LTE DRX parameters (CONNECTED,
// short-DRX, long-DRX, IDLE with 3GPP-style cycle timers).
func DefaultLTEConfig() rrc.ChainSpec { return rrc.DefaultLTEConfig() }

// DefaultNRConfig returns the calibrated 5G NR parameters (CONNECTED,
// RRC_INACTIVE, IDLE).
func DefaultNRConfig() rrc.ChainSpec { return rrc.DefaultNRConfig() }

// SetDefaultRadioProfile sets the backend phones and experiments use when no
// explicit radio option is given (process-wide; starts as "umts"). The
// session-based experiments follow it — that is how the evaluation re-runs
// on another radio generation — while the experiments that measure the UMTS
// machine itself (Fig1, Fig3, Table5, the timer sweep, the ablations) pin
// their radio explicitly and never move.
func SetDefaultRadioProfile(name string) error { return experiments.SetDefaultRadioProfile(name) }

// DefaultLinkConfig returns the calibrated link (760 KB in ≈8 s over DCH).
func DefaultLinkConfig() LinkConfig { return netsim.DefaultConfig() }

// DefaultCostModel returns the calibrated browser cost model.
func DefaultCostModel() CostModel { return browser.DefaultCostModel() }

// DefaultTraceConfig mirrors the paper's 40-user collection.
func DefaultTraceConfig() TraceConfig { return trace.DefaultConfig() }

// DefaultPolicyParams returns Algorithm 2's Table 2 parameters.
func DefaultPolicyParams() PolicyParams { return policy.DefaultParams() }

// GeneratePage builds a deterministic synthetic page from a spec.
func GeneratePage(spec PageSpec) (*Page, error) { return webpage.Generate(spec) }

// MobileBenchmark generates the ten mobile-version Table 3 pages.
func MobileBenchmark() ([]*Page, error) { return webpage.MobileBenchmark() }

// FullBenchmark generates the ten full-version Table 3 pages.
func FullBenchmark() ([]*Page, error) { return webpage.FullBenchmark() }

// ESPNSports generates the espn.go.com/sports stand-in (the paper's running
// example page).
func ESPNSports() (*Page, error) { return webpage.ESPNSports() }

// MCNNPage generates the m.cnn.com stand-in (the paper's representative
// mobile page).
func MCNNPage() (*Page, error) { return webpage.MCNN() }

// BenchmarkPage generates any named benchmark page.
func BenchmarkPage(name string) (*Page, error) { return experiments.PageByName(name) }

// SynthesizeTrace builds a browsing trace with the paper's marginal
// statistics (Fig. 7 CDF, Table 4 correlations).
func SynthesizeTrace(cfg TraceConfig) (*BrowsingTrace, error) { return trace.Synthesize(cfg) }

// TrainPredictor fits the GBRT reading-time predictor on trace visits.
func TrainPredictor(visits []Visit, cfg PredictorConfig) (*Predictor, error) {
	return predictor.Train(visits, cfg)
}

// DefaultPredictorConfig returns the paper's training setup (interest
// threshold on, α = 2 s).
func DefaultPredictorConfig() PredictorConfig { return predictor.DefaultConfig() }

// SplitTrace partitions visits into train/test sets.
func SplitTrace(visits []Visit, testFrac float64, seed int64) (train, test []Visit, err error) {
	return predictor.Split(visits, testFrac, seed)
}

// SaveTrace streams a trace's visits as JSON lines.
func SaveTrace(ds *BrowsingTrace, w io.Writer) error {
	return ds.WriteVisits(w)
}

// LoadTrace reads visits previously written with SaveTrace.
func LoadTrace(r io.Reader) ([]Visit, error) {
	return trace.ReadVisits(r)
}

// LoadPredictor reads a predictor previously written with Predictor.Save —
// the paper's "train offline, deploy the tree model to the phone" step.
func LoadPredictor(r io.Reader) (*Predictor, error) {
	return predictor.LoadPredictor(r)
}

// PerUserPredictor routes predictions to per-user models with a global
// fallback (the paper's on-phone deployment).
type PerUserPredictor = predictor.PerUser

// TrainPerUserPredictor fits one model per user plus the global fallback.
func TrainPerUserPredictor(visits []Visit, cfg PredictorConfig) (*PerUserPredictor, error) {
	return predictor.TrainPerUser(visits, cfg)
}

// ShouldSwitchToIdle is Algorithm 2's decision rule.
func ShouldSwitchToIdle(predictedReading time.Duration, p PolicyParams) bool {
	return policy.ShouldSwitchToIdle(predictedReading, p)
}

// ExtractFeatures pulls the Table 1 feature vector out of a load result.
func ExtractFeatures(r *Result) (FeatureVector, error) { return features.FromResult(r) }

// Phone is one simulated 3G smartphone: virtual clock, radio, link and a
// browser in a fixed pipeline mode. Loads are sequential; time only advances
// through LoadPage and Read.
type Phone struct {
	session *experiments.Session
	cpuJ    float64
}

// New creates a phone from the calibrated defaults, adjusted by options.
func New(mode Mode, opts ...PhoneOption) (*Phone, error) {
	s, err := experiments.New(mode, opts...)
	if err != nil {
		return nil, err
	}
	return &Phone{session: s}, nil
}

// NewPhone creates a phone with default substrate parameters.
//
// Deprecated: use New; engine options go through WithEngineOptions.
func NewPhone(mode Mode, opts ...EngineOption) (*Phone, error) {
	return New(mode, WithEngineOptions(opts...))
}

// NewPhoneWithConfig creates a phone with explicit substrate parameters.
//
// Deprecated: use New with WithRadioConfig, WithLinkConfig and
// WithCostModel.
func NewPhoneWithConfig(mode Mode, radio RadioConfig, link LinkConfig,
	cost CostModel, opts ...EngineOption) (*Phone, error) {
	return New(mode, WithRadioConfig(radio), WithLinkConfig(link),
		WithCostModel(cost), WithEngineOptions(opts...))
}

// LoadPage loads a page to its final display and returns the load result.
func (p *Phone) LoadPage(page *Page) (*Result, error) {
	res, err := p.session.LoadToEnd(page)
	if err != nil {
		return nil, err
	}
	p.cpuJ += res.CPUEnergyJ
	return res, nil
}

// Read advances simulated time with the user reading (radio timers run, or
// the radio stays dormant if it was released).
func (p *Phone) Read(d time.Duration) {
	if d > 0 {
		p.session.Clock.RunFor(d)
	}
}

// Now returns the phone's current simulated time.
func (p *Phone) Now() time.Duration { return p.session.Clock.Now() }

// EnergyJ returns total energy (radio + browser CPU) consumed so far.
func (p *Phone) EnergyJ() float64 {
	return p.session.Radio.EnergyJ() + p.cpuJ
}

// RadioState returns the radio's current RRC state.
func (p *Phone) RadioState() RadioState { return p.session.Radio.State() }

// ForceRadioIdle releases the signaling connection early (fast dormancy),
// as Algorithm 2 would after a long predicted reading time.
func (p *Phone) ForceRadioIdle() error { return p.session.Radio.ForceIdle() }

// Experiments regenerates the paper's tables and figures; see cmd/eabench
// for the printable form.
type Experiments struct{}

// Fig1 — radio state power trace.
func (Experiments) Fig1() (*experiments.Fig1Result, error) { return experiments.Fig1() }

// Fig3 — intuitive-release crossover sweep.
func (Experiments) Fig3() (*experiments.Fig3Result, error) { return experiments.Fig3() }

// Fig4 — browser vs. socket traffic shape.
func (Experiments) Fig4() (*experiments.Fig4Result, error) { return experiments.Fig4() }

// Fig7 — reading-time CDF.
func (Experiments) Fig7() (*experiments.Fig7Result, error) { return experiments.Fig7() }

// Fig8 — data-transmission and loading times.
func (Experiments) Fig8() (*experiments.Fig8Result, error) { return experiments.Fig8() }

// Fig9 — espn power traces.
func (Experiments) Fig9() (*experiments.Fig9Result, error) { return experiments.Fig9() }

// Fig10 — open-page + 20 s reading energy.
func (Experiments) Fig10() (*experiments.Fig10Result, error) { return experiments.Fig10() }

// Fig11 — network capacity.
func (Experiments) Fig11() (*experiments.Fig11Result, error) { return experiments.Fig11() }

// Fig12 — display timings for espn.
func (Experiments) Fig12() (*experiments.Fig12Result, error) { return experiments.Fig12() }

// Fig14 — average display times.
func (Experiments) Fig14() (*experiments.Fig14Result, error) { return experiments.Fig14() }

// Fig15 — prediction accuracy with/without the interest threshold.
func (Experiments) Fig15() (*experiments.Fig15Result, error) { return experiments.Fig15() }

// Fig16 — the six-case policy comparison.
func (Experiments) Fig16() (*experiments.Fig16Result, error) { return experiments.Fig16() }

// Table4 — feature correlations.
func (Experiments) Table4() (*experiments.Table4Result, error) { return experiments.Table4() }

// Table5 — per-state power.
func (Experiments) Table5() []experiments.Table5Row { return experiments.Table5() }

// Table7 — prediction cost by forest size.
func (Experiments) Table7() ([]experiments.Table7Row, error) { return experiments.Table7() }

// Reorder — the reordering+dormancy intervention re-run on every radio
// backend (UMTS, LTE DRX, 5G NR).
func (Experiments) Reorder() (*experiments.ReorderResult, error) {
	return experiments.Reorder()
}

// Ablations — design-choice ablation sweep.
func (Experiments) Ablations() (*experiments.AblationResult, error) {
	return experiments.Ablations()
}

// Fleet — concurrent multi-hundred-user fleet replay with Algorithm 2.
func (Experiments) Fleet(cfg experiments.FleetConfig) (*experiments.FleetResult, error) {
	return experiments.Fleet(cfg)
}

// Scenarios — the scenario×policy matrix: every built-in channel scenario
// replayed under the static thresholds, the adaptive estimator and the
// counterfactual oracle, on the process-default radio backend.
func (Experiments) Scenarios() (*experiments.ScenarioMatrix, error) {
	return experiments.Scenarios()
}

// DefaultFleetConfig returns the 300-phone fleet setup.
func DefaultFleetConfig() experiments.FleetConfig { return experiments.DefaultFleetConfig() }

// Version identifies the reproduction.
const Version = "1.1.0"
